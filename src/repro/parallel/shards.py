"""Process-pool shard scheduler for batches of reachability queries.

The paper's Figure 2/3 experiments are embarrassingly parallel: dozens of
independent reachability checks (program x target x algorithm), each owning
its own MUCKE-style solver instance.  Since the signed-edge representation
and the GC safe-point protocol are *manager-local* (see
:mod:`repro.bdd.manager`), every shard can construct a private
:class:`~repro.bdd.BddManager` + :class:`~repro.fixedpoint.symbolic.SymbolicBackend`
with no shared state whatsoever — which makes process-level sharding the
natural parallelism unit in CPython (threads would fight the GIL for zero
gain on this pure-Python kernel).

Ownership contract
------------------
* A :class:`BatchQuery` is plain picklable data: the parsed program (or its
  source text), a friendly target spec, and algorithm/engine options.
* :func:`run_shard` is the *worker entry point*.  It runs in the worker
  process, builds the entire solver stack from scratch, and returns a
  :class:`ShardResult` whose :class:`~repro.algorithms.ReachabilityResult`
  carries the shard's own kernel/GC statistics snapshot.  No BDD edge, plan,
  manager or backend ever crosses a process boundary — only programs,
  targets and result records do.
* :func:`run_shards` fans a batch out over a process pool (``jobs`` workers)
  and preserves query order in the returned list.  With ``jobs <= 1``, or
  when the batch cannot be pickled, or when the platform refuses to start a
  pool, it degrades to an in-process sequential loop with identical
  semantics (same results, same ordering, errors captured the same way).

Interpretation exchange (per-shard session reuse)
-------------------------------------------------
Queries that target *the same program* with the same algorithm no longer
each rebuild the solver stack: :func:`run_shards` groups them (see
``group_by_program``) and ships each multi-query group to
:func:`run_shard_group`, which opens ONE
:class:`repro.api.AnalysisSession` in the worker, solves the
target-independent summary fixed point once and answers every target of
the group as a query post-pass over the retained interpretations.  This is
how fixed-point summaries are shared across queries: *within* a shard,
through the session; never *across* process boundaries — the ownership
contract above is unchanged, and ``ShardResult.reused_solve`` records
which queries rode an already-solved session.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms.result import ReachabilityResult

__all__ = ["BatchQuery", "ShardResult", "run_shard", "run_shard_group", "run_shards"]


@dataclass
class BatchQuery:
    """One reachability query of a batch, as plain picklable data.

    Attributes
    ----------
    name:
        Row label in batch reports (e.g. ``"Driver 3 handlers (pos)"``).
    program:
        A parsed :class:`~repro.boolprog.Program` /
        :class:`~repro.boolprog.ConcurrentProgram`, or the program source
        text (parsed in the worker).
    target:
        A friendly target spec: ``"error"``, ``"proc:label"``
        (``"thread:proc:label"`` for concurrent programs), a list of such
        strings, or explicit ``(module, pc)`` pairs.
    algorithm:
        Sequential algorithm name (``"summary"``, ``"ef"``, ``"ef-opt"``);
        ignored when ``concurrent`` is set.
    concurrent:
        Use the bounded context-switching engine on a concurrent program.
    context_switches:
        Context-switch bound for the concurrent engine.
    early_stop:
        Stop the fixed point as soon as the target is known reachable.
    expected:
        Optional known verdict; merged reports flag mismatches.
    """

    name: str
    program: Union[str, object]
    target: Union[str, Sequence[str], Sequence[Tuple[int, int]]] = "error"
    algorithm: str = "ef-opt"
    concurrent: bool = False
    context_switches: int = 2
    early_stop: bool = True
    expected: Optional[bool] = None


@dataclass
class ShardResult:
    """Outcome of one shard: the query's result plus worker-side telemetry.

    ``result`` is ``None`` exactly when ``error`` is set; ``error`` carries
    the worker-side exception rendered as ``"ExcType: message"`` so a batch
    survives individual shard failures.  ``pid`` identifies the worker
    process that ran the shard (the driver process itself in sequential
    mode) and ``elapsed_seconds`` is the shard-local wall clock, which a
    merged report compares against the batch wall clock to compute speedup.
    ``reused_solve`` is True when the query was answered as a post-pass over
    a session's already-solved fixed point instead of its own evaluation
    (see :func:`run_shard_group`); the report's ``queries_per_solve``
    aggregates it.
    """

    name: str
    result: Optional[ReachabilityResult] = None
    error: Optional[str] = None
    pid: int = 0
    elapsed_seconds: float = 0.0
    expected: Optional[bool] = None
    reused_solve: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def mismatch(self) -> bool:
        """True when an expected verdict was given and the shard disagrees."""
        return (
            self.ok
            and self.expected is not None
            and self.result is not None
            and self.result.reachable != self.expected
        )

    def live_nodes(self) -> Optional[int]:
        """The shard kernel's live BDD node count, or None."""
        return self.result.live_nodes() if self.result is not None else None

    def gc_collections(self) -> Optional[int]:
        """The shard kernel's collection count, or None."""
        if self.result is None:
            return None
        gc = self.result.gc_stats()
        if not gc:
            return 0
        count = gc.get("collections")
        return count if isinstance(count, int) else 0


def run_shard(query: BatchQuery) -> ShardResult:
    """Worker entry point: run one query with a private solver stack.

    Imports the front end lazily (workers under ``spawn`` re-import this
    module) and builds a fresh ``SymbolicBackend``/``BddManager`` pair via
    the engine — nothing is shared with the driver process or any sibling
    shard, so the per-shard ``result.stats`` snapshot is exactly the kernel
    activity of this one query.
    """
    from ..frontends.getafix import check_concurrent_reachability, check_reachability

    started = time.perf_counter()
    try:
        if query.concurrent:
            result = check_concurrent_reachability(
                query.program,
                target=query.target,
                context_switches=query.context_switches,
                early_stop=query.early_stop,
            )
        else:
            result = check_reachability(
                query.program,
                target=query.target,
                algorithm=query.algorithm,
                early_stop=query.early_stop,
            )
        return ShardResult(
            name=query.name,
            result=result,
            pid=os.getpid(),
            elapsed_seconds=time.perf_counter() - started,
            expected=query.expected,
        )
    except Exception as exc:  # noqa: BLE001 — a shard failure must not kill the batch
        return ShardResult(
            name=query.name,
            error=f"{type(exc).__name__}: {exc}",
            pid=os.getpid(),
            elapsed_seconds=time.perf_counter() - started,
            expected=query.expected,
        )


def run_shard_group(queries: Sequence[BatchQuery]) -> List[ShardResult]:
    """Worker entry point for a group of queries on ONE program.

    A singleton group degrades to :func:`run_shard` (no session overhead
    for one-off queries).  Larger groups open a single
    :class:`repro.api.AnalysisSession`, which validates, builds the CFG,
    encodes the templates and solves the summary fixed point once; every
    query of the group is then answered against the retained
    interpretations.  The first result of the group carries the solve
    (``reused_solve=False``); the rest are post-passes
    (``reused_solve=True``).  A session-construction failure (parse/type
    error) fails every query of the group the same way each would have
    failed alone.

    Kernel-statistics caveat: grouped queries share one manager, and a
    session's stats snapshots are cumulative, so the ``live``/``gc``
    numbers of a grouped row describe the session *up to and including*
    that query — not that query alone, as on singleton shards.  Summing
    those columns across the rows of one group double-counts.
    """
    queries = list(queries)
    if len(queries) == 1:
        return [run_shard(queries[0])]
    from ..api.session import SessionSpec

    head = queries[0]
    started = time.perf_counter()
    try:
        session = SessionSpec(
            program=head.program, default_algorithm=head.algorithm
        ).open()
    except Exception as exc:  # noqa: BLE001 — group setup failure hits every query
        error = f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - started
        return [
            ShardResult(
                name=query.name,
                error=error,
                pid=os.getpid(),
                elapsed_seconds=elapsed if index == 0 else 0.0,
                expected=query.expected,
            )
            for index, query in enumerate(queries)
        ]
    # Session construction (parse/validate/CFG) is shared cost the singleton
    # path would have timed inside run_shard; charge it — like the solve —
    # to the group's first query so shard_seconds/speedup stay honest.
    setup_seconds = time.perf_counter() - started
    results: List[ShardResult] = []
    try:
        # Solve the target-independent summary once up front so EVERY query
        # of the group — not just those after the first full fixed point —
        # is a post-pass.  The first query carries the solve in its clock,
        # the first *successful* query carries its attribution
        # (reused_solve=False: it "paid" for the solve); failure to
        # pre-solve (iteration budget, target-dependent system) degrades to
        # the lazy per-query behaviour.
        solve_seconds = 0.0
        presolved = False
        try:
            solve_started = time.perf_counter()
            session.solve(head.algorithm)
            solve_seconds = time.perf_counter() - solve_started
            presolved = True
        except Exception:  # noqa: BLE001 — lazy checks may still succeed/report
            pass
        solve_attributed = not presolved
        first_query_overhead = setup_seconds + solve_seconds
        for index, query in enumerate(queries):
            query_started = time.perf_counter()
            try:
                result = session.check(
                    query.target, algorithm=query.algorithm, early_stop=query.early_stop
                )
                reused = bool(result.details.get("reused_solve"))
                if not solve_attributed:
                    reused = False
                    solve_attributed = True
                # Keep the two exposed reuse flags consistent: the result's
                # details must agree with the shard-level attribution.
                result.details["reused_solve"] = reused
                results.append(
                    ShardResult(
                        name=query.name,
                        result=result,
                        pid=os.getpid(),
                        elapsed_seconds=time.perf_counter()
                        - query_started
                        + (first_query_overhead if index == 0 else 0.0),
                        expected=query.expected,
                        reused_solve=reused,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — one bad target, not the group
                results.append(
                    ShardResult(
                        name=query.name,
                        error=f"{type(exc).__name__}: {exc}",
                        pid=os.getpid(),
                        # Index 0 still carries the setup/solve wall time so
                        # the report's shard_seconds/speedup accounting does
                        # not lose it when the first query errors.
                        elapsed_seconds=time.perf_counter()
                        - query_started
                        + (first_query_overhead if index == 0 else 0.0),
                        expected=query.expected,
                    )
                )
    finally:
        session.close()
    return results


def _group_key(query: BatchQuery, index: int):
    """Queries land in one group iff they can share an analysis session.

    Concurrent queries use a different engine (no session support) and stay
    singletons, as does anything whose program cannot be compared cheaply:
    parsed programs group by object identity, source texts by content.
    """
    if query.concurrent:
        return ("solo", index)
    program_key = query.program if isinstance(query.program, str) else id(query.program)
    return ("session", program_key, query.algorithm)


def group_queries(queries: Sequence[BatchQuery]) -> List[List[int]]:
    """Partition query indices into session-shareable groups (order kept).

    Group order follows first appearance; indices inside a group keep
    submission order, so flattening group results in group-then-member
    order never reorders a batch that was already grouped.
    """
    groups: Dict[object, List[int]] = {}
    for index, query in enumerate(queries):
        groups.setdefault(_group_key(query, index), []).append(index)
    return list(groups.values())


def _batch_is_picklable(queries: Sequence[BatchQuery]) -> bool:
    """Feasibility probe: can this batch cross a process boundary?"""
    try:
        pickle.dumps(list(queries))
        return True
    except Exception:
        return False


def run_shards(
    queries: Sequence[BatchQuery],
    jobs: int = 1,
    start_method: Optional[str] = None,
    group_by_program: bool = True,
) -> Tuple[List[ShardResult], str, Optional[str]]:
    """Run a batch of queries, fanning out over ``jobs`` worker processes.

    With ``group_by_program`` (the default), queries sharing a program and
    algorithm form one scheduling unit served by a single analysis session
    (see :func:`run_shard_group`); the pool then maps over *groups*, and
    the returned results are flattened back into submission order.

    Returns ``(results, mode, fallback_reason)``: ``results`` preserves
    query order; ``mode`` records how the batch actually ran —
    ``"process-pool"``, ``"sequential"`` (requested with ``jobs <= 1`` or a
    trivial batch) or ``"sequential-fallback"`` (pool unavailable);
    ``fallback_reason`` names the cause of a fallback (unpicklable batch,
    or the exception that broke the pool) and is None otherwise.
    """
    queries = list(queries)
    if group_by_program:
        groups = group_queries(queries)
    else:
        groups = [[index] for index in range(len(queries))]

    def flatten(per_group: Sequence[List[ShardResult]]) -> List[ShardResult]:
        ordered: List[ShardResult] = [None] * len(queries)  # type: ignore[list-item]
        for indices, results in zip(groups, per_group):
            for index, shard in zip(indices, results):
                ordered[index] = shard
        return ordered

    def sequential() -> List[ShardResult]:
        return flatten([run_shard_group([queries[i] for i in group]) for group in groups])

    if jobs <= 1 or len(groups) <= 1:
        reason = None
        if jobs > 1 and len(queries) > 1:
            # The caller asked for a pool but grouping collapsed the batch
            # into one session; say so rather than silently dropping the
            # fan-out (group_by_program=False / --no-group restores it).
            reason = (
                "all queries grouped onto one session; pass "
                "group_by_program=False to fan out instead"
            )
        return sequential(), "sequential", reason
    if not _batch_is_picklable(queries):
        return sequential(), "sequential-fallback", "batch is not picklable"
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context(start_method) if start_method else None
        workers = min(jobs, len(groups))
        grouped_queries = [[queries[i] for i in group] for group in groups]
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            per_group = list(pool.map(run_shard_group, grouped_queries))
        return flatten(per_group), "process-pool", None
    except Exception as exc:  # pool start-up or transport failure: degrade, don't die
        reason = f"process pool failed: {type(exc).__name__}: {exc}"
        return sequential(), "sequential-fallback", reason
