"""Process-pool shard scheduler for batches of reachability queries.

The paper's Figure 2/3 experiments are embarrassingly parallel: dozens of
independent reachability checks (program x target x algorithm), each owning
its own MUCKE-style solver instance.  Since the signed-edge representation
and the GC safe-point protocol are *manager-local* (see
:mod:`repro.bdd.manager`), every shard can construct a private
:class:`~repro.bdd.BddManager` + :class:`~repro.fixedpoint.symbolic.SymbolicBackend`
with no shared state whatsoever — which makes process-level sharding the
natural parallelism unit in CPython (threads would fight the GIL for zero
gain on this pure-Python kernel).

Ownership contract
------------------
* A :class:`BatchQuery` is plain picklable data: the parsed program (or its
  source text), a friendly target spec, and algorithm/engine options.
* :func:`run_shard` is the *worker entry point*.  It runs in the worker
  process, builds the entire solver stack from scratch, and returns a
  :class:`ShardResult` whose :class:`~repro.algorithms.ReachabilityResult`
  carries the shard's own kernel/GC statistics snapshot.  No BDD edge, plan,
  manager or backend ever crosses a process boundary — only programs,
  targets and result records do.
* :func:`run_shards` fans a batch out over a process pool (``jobs`` workers)
  and preserves query order in the returned list.  With ``jobs <= 1``, or
  when the batch cannot be pickled, or when the platform refuses to start a
  pool, it degrades to an in-process sequential loop with identical
  semantics (same results, same ordering, errors captured the same way).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.result import ReachabilityResult

__all__ = ["BatchQuery", "ShardResult", "run_shard", "run_shards"]


@dataclass
class BatchQuery:
    """One reachability query of a batch, as plain picklable data.

    Attributes
    ----------
    name:
        Row label in batch reports (e.g. ``"Driver 3 handlers (pos)"``).
    program:
        A parsed :class:`~repro.boolprog.Program` /
        :class:`~repro.boolprog.ConcurrentProgram`, or the program source
        text (parsed in the worker).
    target:
        A friendly target spec: ``"error"``, ``"proc:label"``
        (``"thread:proc:label"`` for concurrent programs), a list of such
        strings, or explicit ``(module, pc)`` pairs.
    algorithm:
        Sequential algorithm name (``"summary"``, ``"ef"``, ``"ef-opt"``);
        ignored when ``concurrent`` is set.
    concurrent:
        Use the bounded context-switching engine on a concurrent program.
    context_switches:
        Context-switch bound for the concurrent engine.
    early_stop:
        Stop the fixed point as soon as the target is known reachable.
    expected:
        Optional known verdict; merged reports flag mismatches.
    """

    name: str
    program: Union[str, object]
    target: Union[str, Sequence[str], Sequence[Tuple[int, int]]] = "error"
    algorithm: str = "ef-opt"
    concurrent: bool = False
    context_switches: int = 2
    early_stop: bool = True
    expected: Optional[bool] = None


@dataclass
class ShardResult:
    """Outcome of one shard: the query's result plus worker-side telemetry.

    ``result`` is ``None`` exactly when ``error`` is set; ``error`` carries
    the worker-side exception rendered as ``"ExcType: message"`` so a batch
    survives individual shard failures.  ``pid`` identifies the worker
    process that ran the shard (the driver process itself in sequential
    mode) and ``elapsed_seconds`` is the shard-local wall clock, which a
    merged report compares against the batch wall clock to compute speedup.
    """

    name: str
    result: Optional[ReachabilityResult] = None
    error: Optional[str] = None
    pid: int = 0
    elapsed_seconds: float = 0.0
    expected: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def mismatch(self) -> bool:
        """True when an expected verdict was given and the shard disagrees."""
        return (
            self.ok
            and self.expected is not None
            and self.result is not None
            and self.result.reachable != self.expected
        )

    def live_nodes(self) -> Optional[int]:
        """The shard kernel's live BDD node count, or None."""
        return self.result.live_nodes() if self.result is not None else None

    def gc_collections(self) -> Optional[int]:
        """The shard kernel's collection count, or None."""
        if self.result is None:
            return None
        gc = self.result.gc_stats()
        if not gc:
            return 0
        count = gc.get("collections")
        return count if isinstance(count, int) else 0


def run_shard(query: BatchQuery) -> ShardResult:
    """Worker entry point: run one query with a private solver stack.

    Imports the front end lazily (workers under ``spawn`` re-import this
    module) and builds a fresh ``SymbolicBackend``/``BddManager`` pair via
    the engine — nothing is shared with the driver process or any sibling
    shard, so the per-shard ``result.stats`` snapshot is exactly the kernel
    activity of this one query.
    """
    from ..frontends.getafix import check_concurrent_reachability, check_reachability

    started = time.perf_counter()
    try:
        if query.concurrent:
            result = check_concurrent_reachability(
                query.program,
                target=query.target,
                context_switches=query.context_switches,
                early_stop=query.early_stop,
            )
        else:
            result = check_reachability(
                query.program,
                target=query.target,
                algorithm=query.algorithm,
                early_stop=query.early_stop,
            )
        return ShardResult(
            name=query.name,
            result=result,
            pid=os.getpid(),
            elapsed_seconds=time.perf_counter() - started,
            expected=query.expected,
        )
    except Exception as exc:  # noqa: BLE001 — a shard failure must not kill the batch
        return ShardResult(
            name=query.name,
            error=f"{type(exc).__name__}: {exc}",
            pid=os.getpid(),
            elapsed_seconds=time.perf_counter() - started,
            expected=query.expected,
        )


def _batch_is_picklable(queries: Sequence[BatchQuery]) -> bool:
    """Feasibility probe: can this batch cross a process boundary?"""
    try:
        pickle.dumps(list(queries))
        return True
    except Exception:
        return False


def run_shards(
    queries: Sequence[BatchQuery],
    jobs: int = 1,
    start_method: Optional[str] = None,
) -> Tuple[List[ShardResult], str, Optional[str]]:
    """Run a batch of queries, fanning out over ``jobs`` worker processes.

    Returns ``(results, mode, fallback_reason)``: ``results`` preserves
    query order; ``mode`` records how the batch actually ran —
    ``"process-pool"``, ``"sequential"`` (requested with ``jobs <= 1`` or a
    trivial batch) or ``"sequential-fallback"`` (pool unavailable);
    ``fallback_reason`` names the cause of a fallback (unpicklable batch,
    or the exception that broke the pool) and is None otherwise.
    """
    queries = list(queries)
    if jobs <= 1 or len(queries) <= 1:
        return [run_shard(query) for query in queries], "sequential", None
    if not _batch_is_picklable(queries):
        reason = "batch is not picklable"
        return [run_shard(query) for query in queries], "sequential-fallback", reason
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context(start_method) if start_method else None
        workers = min(jobs, len(queries))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            results = list(pool.map(run_shard, queries))
        return results, "process-pool", None
    except Exception as exc:  # pool start-up or transport failure: degrade, don't die
        reason = f"process pool failed: {type(exc).__name__}: {exc}"
        return [run_shard(query) for query in queries], "sequential-fallback", reason
