"""Merge layer: collect shard results into a batch report.

The scheduler (:mod:`repro.parallel.shards`) hands back one
:class:`~repro.parallel.shards.ShardResult` per query; this module folds them
into a :class:`BatchReport` that the engine, the CLI and the benchmark
harness all share: verdicts in query order, per-shard kernel/GC statistics
(each shard owned a private manager, so the numbers are genuinely
per-query), aggregate wall-clock accounting and the resulting speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .shards import ShardResult

__all__ = ["BatchReport", "merge_shards"]


@dataclass
class BatchReport:
    """Outcome of a whole batch run.

    Attributes
    ----------
    shards:
        Per-query results, in the order the queries were submitted.
    jobs:
        The worker count that was *requested*.
    mode:
        How the batch actually ran: ``"process-pool"``, ``"sequential"`` or
        ``"sequential-fallback"`` (see :func:`repro.parallel.run_shards`).
    wall_seconds:
        Wall-clock time of the whole batch as observed by the driver.
    fallback_reason:
        Why a requested pool degraded to ``"sequential-fallback"``
        (unpicklable batch, pool start-up failure); None otherwise.
    """

    shards: List[ShardResult] = field(default_factory=list)
    jobs: int = 1
    mode: str = "sequential"
    wall_seconds: float = 0.0
    fallback_reason: Optional[str] = None

    # -- aggregate accounting -------------------------------------------
    @property
    def shard_seconds(self) -> float:
        """Sum of shard-local wall clocks (the sequential-equivalent cost)."""
        return sum(shard.elapsed_seconds for shard in self.shards)

    @property
    def solve_count(self) -> int:
        """Queries that paid for their own fixed-point solve.

        A query answered as a post-pass over a session's retained summary
        has ``reused_solve`` set and does not count; a batch with no
        program-sharing groups therefore reports one solve per query.
        """
        return sum(1 for shard in self.shards if shard.ok and not shard.reused_solve)

    @property
    def reused_count(self) -> int:
        """Queries answered from an already-solved session (reuse wins)."""
        return sum(1 for shard in self.shards if shard.ok and shard.reused_solve)

    @property
    def queries_per_solve(self) -> float:
        """Amortisation factor of the per-shard session reuse (>= 1.0)."""
        answered = sum(1 for shard in self.shards if shard.ok)
        solves = self.solve_count
        if solves == 0:
            return float(answered) if answered else 1.0
        return answered / solves

    @property
    def speedup(self) -> float:
        """Shard-time over batch wall time: > 1 means the fan-out paid off."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.shard_seconds / self.wall_seconds

    @property
    def any_reachable(self) -> bool:
        return any(s.ok and s.result is not None and s.result.reachable for s in self.shards)

    # -- failure taxonomy -----------------------------------------------
    def status_counts(self) -> Dict[str, int]:
        """Shard count per status (``ok/retried/timeout/resource/crashed``)."""
        counts: Dict[str, int] = {}
        for shard in self.shards:
            counts[shard.status] = counts.get(shard.status, 0) + 1
        return counts

    @property
    def retried_count(self) -> int:
        """Shards that succeeded only after a pool rebuild and re-run."""
        return sum(1 for shard in self.shards if shard.status == "retried")

    def resource_failures(self) -> List[ShardResult]:
        """Failed shards that hit a resource envelope (timeout/budget)."""
        return [shard for shard in self.shards if shard.status in ("timeout", "resource")]

    def crash_failures(self) -> List[ShardResult]:
        """Failed shards whose worker died or raised unexpectedly."""
        return [shard for shard in self.shards if not shard.ok and shard.status == "crashed"]

    def verdicts(self) -> Dict[str, Optional[bool]]:
        """Per-query verdict by name (None for failed shards)."""
        return {
            shard.name: (shard.result.reachable if shard.ok and shard.result else None)
            for shard in self.shards
        }

    def failures(self) -> List[ShardResult]:
        """Shards whose worker raised (parse/type/engine errors)."""
        return [shard for shard in self.shards if not shard.ok]

    def mismatches(self) -> List[ShardResult]:
        """Shards that disagree with their query's expected verdict."""
        return [shard for shard in self.shards if shard.mismatch]

    def worker_pids(self) -> List[int]:
        """Distinct worker process ids that served the batch."""
        return sorted({shard.pid for shard in self.shards})

    # -- rendering ------------------------------------------------------
    def format_table(self, kernel_stats: bool = True) -> str:
        """Plain-text table: one row per shard, optional kernel stat columns."""
        header = (
            f"{'query':32s}  {'verdict':>7s}  {'status':>8s}  {'iters':>6s}  "
            f"{'nodes':>8s}  {'live':>7s}  {'gc':>3s}  {'reuse':>5s}  "
            f"{'time (s)':>8s}  {'pid':>7s}"
        )
        lines = [header, "-" * len(header)]
        for shard in self.shards:
            if not shard.ok:
                lines.append(f"{shard.name:32s}  ERROR[{shard.status}]: {shard.error}")
                continue
            result = shard.result
            verdict = result.verdict()
            if shard.mismatch:
                verdict += "!"
            live = shard.live_nodes()
            gc = shard.gc_collections()
            lines.append(
                f"{shard.name:32s}  {verdict:>7s}  {shard.status:>8s}  "
                f"{result.iterations:6d}  "
                f"{result.summary_nodes:8d}  "
                f"{live if live is not None else 0:7d}  "
                f"{gc if gc is not None else 0:3d}  "
                f"{'yes' if shard.reused_solve else 'no':>5s}  "
                f"{shard.elapsed_seconds:8.2f}  {shard.pid:7d}"
            )
        status_note = " ".join(
            f"{status}={count}"
            for status, count in sorted(self.status_counts().items())
            if status != "ok"
        )
        lines.append(
            f"batch: mode={self.mode} jobs={self.jobs} workers={len(self.worker_pids())} "
            f"wall={self.wall_seconds:.2f}s shard-total={self.shard_seconds:.2f}s "
            f"speedup={self.speedup:.2f}x queries/solve={self.queries_per_solve:.2f}"
            + (f" statuses: {status_note}" if status_note else "")
        )
        if self.fallback_reason:
            lines.append(f"fallback: {self.fallback_reason}")
        if kernel_stats:
            lines.append(self._kernel_summary())
        return "\n".join(lines)

    def _kernel_summary(self) -> str:
        live = [shard.live_nodes() or 0 for shard in self.shards if shard.ok]
        gcs = [shard.gc_collections() or 0 for shard in self.shards if shard.ok]
        if not live:
            return "kernel: (no successful shards)"
        return (
            f"kernel: shards={len(live)} live_nodes max={max(live)} total={sum(live)} "
            f"gc_collections total={sum(gcs)}"
        )

    def rows(self) -> List[Dict[str, object]]:
        """JSON-friendly per-shard records (used by ``getafix --json``)."""
        out: List[Dict[str, object]] = []
        for shard in self.shards:
            row: Dict[str, object] = {
                "name": shard.name,
                "pid": shard.pid,
                "elapsed_seconds": shard.elapsed_seconds,
                "status": shard.status,
            }
            if shard.retries:
                row["retries"] = shard.retries
            if shard.ok and shard.result is not None:
                result = shard.result
                row.update(
                    reachable=result.reachable,
                    algorithm=result.algorithm,
                    iterations=result.iterations,
                    summary_nodes=result.summary_nodes,
                    summary_states=result.summary_states,
                    total_seconds=result.total_seconds,
                    live_nodes=shard.live_nodes(),
                    gc_collections=shard.gc_collections(),
                    reused_solve=shard.reused_solve,
                )
                if result.degraded_from is not None:
                    row["degraded_from"] = result.degraded_from
            else:
                row["error"] = shard.error
                if shard.error_detail is not None:
                    row["error_detail"] = shard.error_detail
            out.append(row)
        return out


def merge_shards(
    shards: List[ShardResult],
    jobs: int,
    mode: str,
    wall_seconds: float,
    fallback_reason: Optional[str] = None,
) -> BatchReport:
    """Fold scheduler output into a :class:`BatchReport`."""
    return BatchReport(
        shards=list(shards),
        jobs=jobs,
        mode=mode,
        wall_seconds=wall_seconds,
        fallback_reason=fallback_reason,
    )
