"""Deterministic test scaffolding (fault injection) for the analysis stack."""

from .faults import FaultPlan, active_plan, clear, install

__all__ = ["FaultPlan", "active_plan", "clear", "install"]
