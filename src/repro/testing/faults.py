"""Deterministic fault injection for exercising the recovery paths.

The production code has three failure surfaces that are hard to hit on
demand: a pool worker dying mid-batch, a query exhausting its resource
envelope at a GC safe point, and a shard running longer than its driver-side
timeout.  This module gives tests and the CI smoke step a way to trigger each
one deterministically.

A :class:`FaultPlan` is a frozen, picklable description of the faults to
inject.  The driver ships it across the process-pool boundary (see
``repro.parallel.shards``); each worker installs it before running its shard
group.  The hooks below are called from fixed points in the production code
and are no-ops (a single ``is None`` check) when no plan is installed, so
the harness costs nothing in normal runs:

- :func:`on_shard` — start of a shard group (worker kill, injected delay,
  deterministic raise).
- :func:`on_safe_point` — every ``SymbolicBackend.gc_step`` safe point
  (raise a typed resource error at the Nth safe point).
- :func:`on_query` — start of every ``AnalysisSession.check`` (simulate
  budget exhaustion for specific algorithms, which drives the degradation
  ladder without having to size a real budget between two algorithms).

Worker kills only fire in processes marked as pool workers
(``install(plan, worker=True)``), so a plan that reaches the driver's
sequential path can never take down the driver itself.  One-shot faults
(kill the worker the *first* time it sees a query) latch on an exclusive
token file shared by all workers, which makes "transient crash, retry
succeeds" reproducible across pool rebuilds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..errors import AnalysisTimeout, NodeBudgetExceeded, ResourceExhausted

__all__ = [
    "FaultPlan",
    "install",
    "clear",
    "active_plan",
    "on_shard",
    "on_safe_point",
    "on_query",
]


@dataclass(frozen=True)
class FaultPlan:
    """Picklable description of the faults to inject.

    Attributes
    ----------
    kill_query:
        Kill the pool worker (``os._exit``) when it starts a shard group
        containing this query name.  Only fires in worker processes.
    kill_exit_code:
        Exit code for the injected kill (nonzero, so the pool sees a crash).
    once_token:
        Path to a latch file.  When set, one-shot faults (the kill) fire only
        for the first process that wins an ``O_CREAT | O_EXCL`` create of the
        file — i.e. the fault is transient and a retry succeeds.  When None,
        the kill fires on every attempt (a persistent crasher, which the
        scheduler must quarantine).
    delay_query:
        Sleep ``delay_seconds`` at the start of the shard group containing
        this query (drives the driver-side shard timeout path).
    delay_seconds:
        Injected delay duration.
    fail_query:
        Raise a plain ``RuntimeError`` when a shard group containing this
        query starts, in any process (a deterministic "crashed"-status
        failure that does not kill the worker).  Honors ``once_token`` the
        same way the kill does, so a *transient* raise — fails once, retry
        succeeds — is expressible too (drives the retry-once paths).
    raise_at_safe_point:
        1-based index of the ``gc_step`` safe point at which to raise.
    safe_point_error:
        Which typed error to raise there: ``"timeout"``
        (:class:`AnalysisTimeout`), ``"nodes"``
        (:class:`NodeBudgetExceeded`) or ``"runtime"`` (``RuntimeError``).
    exhaust_algorithms:
        Algorithm names for which ``AnalysisSession.check`` raises an
        injected :class:`NodeBudgetExceeded` immediately — a deterministic
        stand-in for "this algorithm blew its budget" used to test the
        degradation ladder.
    """

    kill_query: Optional[str] = None
    kill_exit_code: int = 23
    once_token: Optional[str] = None
    delay_query: Optional[str] = None
    delay_seconds: float = 0.0
    fail_query: Optional[str] = None
    raise_at_safe_point: Optional[int] = None
    safe_point_error: str = "timeout"
    exhaust_algorithms: Tuple[str, ...] = ()


_ACTIVE: Optional[FaultPlan] = None
_IN_WORKER: bool = False
_SAFE_POINTS: int = 0


def install(plan: Optional[FaultPlan], worker: bool = False) -> None:
    """Install ``plan`` in this process (resets the safe-point counter)."""
    global _ACTIVE, _IN_WORKER, _SAFE_POINTS
    _ACTIVE = plan
    _IN_WORKER = worker
    _SAFE_POINTS = 0


def clear() -> None:
    """Remove any installed plan."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def _claim_token(path: str) -> bool:
    """Atomically claim a one-shot latch; True for the first claimant only."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def on_shard(names: Iterable[str]) -> None:
    """Hook: a shard group containing ``names`` is about to run."""
    plan = _ACTIVE
    if plan is None:
        return
    names = set(names)
    if plan.delay_query is not None and plan.delay_query in names:
        time.sleep(plan.delay_seconds)
    if plan.fail_query is not None and plan.fail_query in names:
        if plan.once_token is None or _claim_token(plan.once_token):
            raise RuntimeError(
                f"injected shard failure for query {plan.fail_query!r}"
            )
    if plan.kill_query is not None and plan.kill_query in names and _IN_WORKER:
        if plan.once_token is None or _claim_token(plan.once_token):
            os._exit(plan.kill_exit_code)


def on_safe_point() -> None:
    """Hook: a symbolic-backend GC safe point was reached."""
    global _SAFE_POINTS
    plan = _ACTIVE
    if plan is None or plan.raise_at_safe_point is None:
        return
    _SAFE_POINTS += 1
    if _SAFE_POINTS != plan.raise_at_safe_point:
        return
    if plan.safe_point_error == "timeout":
        raise AnalysisTimeout(
            "injected timeout at GC safe point", consumed=0.0, budget=0.0
        )
    if plan.safe_point_error == "nodes":
        raise NodeBudgetExceeded(
            "injected node-budget hit at GC safe point", consumed=0, budget=0
        )
    raise RuntimeError("injected failure at GC safe point")


def on_query(algorithm: str) -> None:
    """Hook: ``AnalysisSession.check`` is starting a query on ``algorithm``."""
    plan = _ACTIVE
    if plan is None or not plan.exhaust_algorithms:
        return
    if algorithm in plan.exhaust_algorithms:
        raise NodeBudgetExceeded(
            f"injected budget exhaustion for algorithm {algorithm!r}",
            consumed=0,
            budget=0,
        )
