"""A MOPED-style pushdown-system reachability engine (post* saturation).

MOPED model-checks Boolean programs by viewing them as pushdown systems and
computing a finite automaton that accepts the set of *all reachable
configurations* (control state + full stack content), by saturating an initial
automaton with new transitions (Esparza/Schwoon).  This module reproduces that
architecture with explicit valuations:

* control states are global valuations (plus transient "returning" states that
  carry the values being returned across a pop),
* stack symbols are ``(procedure, pc, local valuation)`` triples, plus special
  return-site symbols that remember which call edge pushed them,
* the ``post*`` saturation rules follow Schwoon's algorithm, with the pushdown
  rules generated on demand from the CFG instead of being enumerated up front.

The real MOPED represents the automaton transitions symbolically with BDDs;
this explicit reproduction answers the same queries but scales differently —
see EXPERIMENTS.md for how this affects the Figure 2 comparison.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..algorithms.result import ReachabilityResult
from ..boolprog import Program, build_cfg, check_program
from ..errors import ExplorationBudgetExceeded
from .semantics import ExplicitContext, GlobalVal, LocalVal

__all__ = ["MopedSolver", "run_moped"]

# Control states: ("g", globals) for ordinary states, ("r", globals, returned
# values, call-id) immediately after popping a callee frame.
Control = Tuple
# Stack symbols: ("sym", procedure, pc, locals) for ordinary frames and
# ("ret", procedure, call-id, locals) for pending return sites.
Symbol = Tuple
#: The single accepting automaton state.
FINAL = ("final",)


class MopedSolver:
    """post* saturation for one Boolean program."""

    def __init__(self, program: Program, validate: bool = True) -> None:
        if validate:
            check_program(program)
        self.program = program
        self.cfg = build_cfg(program)
        self.context = ExplicitContext(self.cfg)
        # Assign a stable identifier to every call edge.
        self.call_edges: List[Tuple[str, object]] = []
        self.call_id: Dict[Tuple[str, int], List[int]] = {}
        for name, proc_cfg in self.cfg.procedures.items():
            for edge in proc_cfg.call_edges:
                self.call_edges.append((name, edge))

    # ------------------------------------------------------------------
    def _rules_from(self, control: Control, symbol: Symbol) -> Iterator[Tuple[Control, Tuple[Symbol, ...]]]:
        """Pushdown rules ``<control, symbol> -> <control', word>`` on demand."""
        context = self.context
        if control[0] not in ("g", "r"):
            # Only control states (global valuations / returning states) have
            # pushdown rules; automaton-internal states do not.
            return
        if control[0] == "r":
            # A value-carrying return state: consume the pending return-site
            # symbol, perform the assignment of returned values, and continue
            # at the return pc of the caller.
            _, globals_, returned, call_id = control
            if symbol[0] != "ret" or symbol[2] != call_id:
                return
            _, caller, _, caller_locals = symbol
            edge = self.call_edges[call_id][1]
            new_locals, new_globals = self._apply_return(caller, edge, caller_locals, returned, globals_)
            yield ("g", new_globals), (("sym", caller, edge.return_pc, new_locals),)
            return
        if symbol[0] != "sym":
            return
        _, procedure, pc, locals_ = symbol
        globals_ = control[1]
        proc_cfg = self.cfg.procedure_cfg(procedure)
        for edge in proc_cfg.internal_edges:
            if edge.source != pc:
                continue
            for new_locals, new_globals in context.internal_successors(procedure, edge, locals_, globals_):
                yield ("g", new_globals), (("sym", procedure, edge.target, new_locals),)
        for index, (owner, edge) in enumerate(self.call_edges):
            if owner != procedure or edge.source != pc:
                continue
            for callee_locals in context.call_entry_locals(procedure, edge, locals_, globals_):
                callee_entry = self.cfg.procedure_cfg(edge.callee).entry
                yield (
                    ("g", globals_),
                    (
                        ("sym", edge.callee, callee_entry, callee_locals),
                        ("ret", procedure, index, locals_),
                    ),
                )
        if pc == proc_cfg.exit:
            # Popping the frame: the returned values (the __ret slots) travel
            # in the control state until the pending return-site symbol below
            # is consumed.
            returned = self._returned_values(procedure, locals_)
            for index, (owner, edge) in enumerate(self.call_edges):
                if edge.callee == procedure:
                    yield ("r", globals_, returned, index), ()

    def _returned_values(self, procedure: str, locals_: LocalVal) -> Tuple[bool, ...]:
        proc_cfg = self.cfg.procedure_cfg(procedure)
        count = self.program.procedure(procedure).num_returns
        return tuple(locals_[proc_cfg.slot_of[f"__ret{i}"]] for i in range(count))

    def _apply_return(
        self,
        caller: str,
        edge,
        caller_locals: LocalVal,
        returned: Tuple[bool, ...],
        globals_: GlobalVal,
    ) -> Tuple[LocalVal, GlobalVal]:
        caller_slots = self.cfg.procedure_cfg(caller).slot_of
        new_locals = list(caller_locals)
        new_globals = list(globals_)
        for index, target in enumerate(edge.targets):
            value = returned[index]
            if target in caller_slots:
                new_locals[caller_slots[target]] = value
            else:
                new_globals[self.context.global_index[target]] = value
        return tuple(new_locals), tuple(new_globals)

    # ------------------------------------------------------------------
    def check(
        self,
        target_locations: Sequence[Tuple[int, int]],
        max_transitions: int = 5_000_000,
    ) -> ReachabilityResult:
        """Saturate post* and ask whether a target location is reachable."""
        started = time.perf_counter()
        targets = set(map(tuple, target_locations))
        module_of = self.cfg.module_of
        context = self.context

        main = self.program.main
        initial_control: Control = ("g", context.initial_globals())
        initial_symbol: Symbol = (
            "sym",
            main,
            self.cfg.procedure_cfg(main).entry,
            context.initial_locals(main),
        )

        # The saturation works on transitions (state, symbol-or-None, state);
        # None is the epsilon label produced by pop rules (Schwoon's post*).
        relation: Set[Tuple] = set()
        worklist: deque = deque()
        pending: Set[Tuple] = set()
        # Mid states for push rules, keyed by (control', first symbol).
        mid_states: Dict[Tuple[Control, Symbol], Tuple] = {}
        # Sources of epsilon transitions into each state.
        eps_into: Dict[Tuple, Set[Control]] = {}
        # Already-processed transitions leaving each state.
        leaving: Dict[Tuple, Set[Tuple]] = {}

        def add(transition: Tuple) -> None:
            if transition not in relation and transition not in pending:
                pending.add(transition)
                worklist.append(transition)

        add((initial_control, initial_symbol, FINAL))

        iterations = 0
        while worklist:
            if len(relation) > max_transitions:
                raise ExplorationBudgetExceeded(
                    "moped baseline exceeded its transition budget",
                    resource="transitions",
                    consumed=len(relation),
                    budget=max_transitions,
                )
            transition = worklist.popleft()
            pending.discard(transition)
            if transition in relation:
                continue
            relation.add(transition)
            iterations += 1
            source, label, destination = transition
            leaving.setdefault(source, set()).add(transition)
            if label is None:
                # Epsilon transition source --eps--> destination: whatever can
                # be read from the destination can be read from the source.
                eps_into.setdefault(destination, set()).add(source)
                for other in list(leaving.get(destination, ())):
                    _, other_label, other_destination = other
                    if other_label is not None:
                        add((source, other_label, other_destination))
                continue
            # Combine with epsilon transitions already pointing at our source.
            for eps_source in eps_into.get(source, ()):
                add((eps_source, label, destination))
            for new_control, word in self._rules_from(source, label):
                if len(word) == 0:
                    add((new_control, None, destination))
                elif len(word) == 1:
                    add((new_control, word[0], destination))
                else:
                    first, second = word
                    mid_key = (new_control, first)
                    mid = mid_states.get(mid_key)
                    if mid is None:
                        mid = ("mid", len(mid_states))
                        mid_states[mid_key] = mid
                    add((new_control, first, mid))
                    # The second symbol continues to the old destination.
                    add((mid, second, destination))

        # A configuration with top symbol γ is reachable iff some control
        # state has a γ-transition to a state from which the final state is
        # accepting (i.e. from which the remaining stack can be read; here any
        # state that reaches FINAL through the automaton).
        co_reachable = self._co_reachable(relation)
        reachable = False
        for source, label, destination in relation:
            if label is None or label[0] != "sym":
                continue
            if source[0] not in ("g", "r"):
                continue
            _, procedure, pc, _locals = label
            if (module_of(procedure), pc) in targets and destination in co_reachable:
                reachable = True
                break

        elapsed = time.perf_counter() - started
        return ReachabilityResult(
            reachable=reachable,
            algorithm="moped-post*",
            iterations=iterations,
            summary_nodes=len(relation),
            summary_states=len(relation),
            elapsed_seconds=elapsed,
            total_seconds=elapsed,
            details={"automaton_transitions": len(relation), "mid_states": len(mid_states)},
        )

    @staticmethod
    def _co_reachable(relation: Set[Tuple]) -> Set[Tuple]:
        """States from which the accepting state is reachable (incl. FINAL)."""
        predecessors: Dict[Tuple, Set[Tuple]] = {}
        for source, _label, destination in relation:
            predecessors.setdefault(destination, set()).add(source)
        seen = {FINAL}
        frontier = deque([FINAL])
        while frontier:
            state = frontier.popleft()
            for predecessor in predecessors.get(state, ()):
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        return seen


def run_moped(
    program: Program,
    target_locations: Sequence[Tuple[int, int]],
    early_stop: bool = True,
) -> ReachabilityResult:
    """Convenience wrapper around :class:`MopedSolver` (early_stop is ignored:
    the saturation always runs to completion, like the original tool's forward
    reachability mode)."""
    return MopedSolver(program).check(target_locations)
