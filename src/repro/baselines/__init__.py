"""Comparison engines: BEBOP-style, MOPED-style and explicit concurrent solvers."""

from .semantics import ExplicitContext, eval_expr, eval_exprs
from .bebop import BebopSolver, run_bebop
from .moped import MopedSolver, run_moped
from .concurrent_explicit import ConcurrentExplicitSolver, run_concurrent_explicit

__all__ = [
    "ExplicitContext",
    "eval_expr",
    "eval_exprs",
    "BebopSolver",
    "run_bebop",
    "MopedSolver",
    "run_moped",
    "ConcurrentExplicitSolver",
    "run_concurrent_explicit",
]
