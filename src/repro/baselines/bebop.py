"""A BEBOP-style explicit summary-based reachability solver.

This engine implements the classical interprocedural reachability algorithm
(Reps–Horwitz–Sagiv path edges + procedure summaries) over *explicit*
valuations.  It plays two roles in the reproduction:

* it is the stand-in for the BEBOP column of Figure 2 (the real BEBOP keeps
  per-program-counter BDDs; ours enumerates valuations, which is faithful in
  answers but much slower on variable-rich programs — see EXPERIMENTS.md), and
* it is the *ground truth* against which the symbolic Getafix engines are
  differentially tested: it shares no code with the BDD pipeline beyond the
  parser and CFG builder.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from ..boolprog import Program, build_cfg, check_program
from ..boolprog.cfg import ProgramCfg
from ..errors import ExplorationBudgetExceeded
from ..algorithms.result import ReachabilityResult
from .semantics import ExplicitContext, GlobalVal, LocalVal

__all__ = ["BebopSolver", "run_bebop"]

#: A path edge: within `procedure`, from the entry valuation to the current
#: (pc, locals, globals) valuation.
PathEdge = Tuple[str, LocalVal, GlobalVal, int, LocalVal, GlobalVal]


class BebopSolver:
    """Explicit summary-based reachability for one program."""

    def __init__(self, program: Program, validate: bool = True) -> None:
        if validate:
            check_program(program)
        self.program = program
        self.cfg: ProgramCfg = build_cfg(program)
        self.context = ExplicitContext(self.cfg)

    def check(
        self,
        target_locations: Sequence[Tuple[int, int]],
        early_stop: bool = True,
        max_path_edges: int = 5_000_000,
    ) -> ReachabilityResult:
        """Is any of the (module, pc) targets reachable?"""
        started = time.perf_counter()
        targets = set(map(tuple, target_locations))
        module_of = self.cfg.module_of
        context = self.context

        path_edges: Set[PathEdge] = set()
        worklist: deque = deque()
        # callers[(callee, entry_locals, entry_globals)] -> call sites waiting
        # for summaries of that callee entry.
        callers: Dict[Tuple[str, LocalVal, GlobalVal], Set[Tuple]] = {}
        # summaries[(callee, entry_locals, entry_globals)] -> exit valuations.
        summaries: Dict[Tuple[str, LocalVal, GlobalVal], Set[Tuple[LocalVal, GlobalVal]]] = {}

        reachable = False
        iterations = 0

        def propagate(edge: PathEdge) -> None:
            if edge not in path_edges:
                path_edges.add(edge)
                worklist.append(edge)

        main = self.program.main
        init_locals = context.initial_locals(main)
        init_globals = context.initial_globals()
        propagate((main, init_locals, init_globals, self.cfg.procedure_cfg(main).entry, init_locals, init_globals))

        while worklist:
            if len(path_edges) > max_path_edges:
                raise ExplorationBudgetExceeded(
                    "bebop baseline exceeded its path-edge budget",
                    resource="path-edges",
                    consumed=len(path_edges),
                    budget=max_path_edges,
                )
            procedure, entry_l, entry_g, pc, locals_, globals_ = worklist.popleft()
            iterations += 1
            if (module_of(procedure), pc) in targets:
                reachable = True
                if early_stop:
                    break
            proc_cfg = self.cfg.procedure_cfg(procedure)
            for edge in proc_cfg.internal_edges:
                if edge.source != pc:
                    continue
                for new_locals, new_globals in context.internal_successors(
                    procedure, edge, locals_, globals_
                ):
                    propagate((procedure, entry_l, entry_g, edge.target, new_locals, new_globals))
            for edge in proc_cfg.call_edges:
                if edge.source != pc:
                    continue
                callee_entry_pc = self.cfg.procedure_cfg(edge.callee).entry
                for callee_locals in context.call_entry_locals(procedure, edge, locals_, globals_):
                    key = (edge.callee, callee_locals, globals_)
                    site = (procedure, entry_l, entry_g, edge.source, locals_, edge.return_pc, edge.callee)
                    callers.setdefault(key, set()).add((site, edge_index(proc_cfg, edge)))
                    propagate((edge.callee, callee_locals, globals_, callee_entry_pc, callee_locals, globals_))
                    for exit_locals, exit_globals in summaries.get(key, ()):
                        new_locals, new_globals = context.apply_return(
                            procedure, edge, locals_, exit_locals, exit_globals
                        )
                        propagate((procedure, entry_l, entry_g, edge.return_pc, new_locals, new_globals))
            if pc == proc_cfg.exit:
                key = (procedure, entry_l, entry_g)
                exits = summaries.setdefault(key, set())
                exit_valuation = (locals_, globals_)
                if exit_valuation not in exits:
                    exits.add(exit_valuation)
                    for (site, edge_idx) in callers.get(key, set()):
                        caller, caller_entry_l, caller_entry_g, call_pc, caller_locals, return_pc, callee = site
                        caller_cfg = self.cfg.procedure_cfg(caller)
                        call_edge = caller_cfg.call_edges[edge_idx]
                        new_locals, new_globals = context.apply_return(
                            caller, call_edge, caller_locals, locals_, globals_
                        )
                        propagate(
                            (caller, caller_entry_l, caller_entry_g, return_pc, new_locals, new_globals)
                        )

        elapsed = time.perf_counter() - started
        # A path edge is <entry valuation> -> <current state>; several edges
        # can share their state component, so the reached-state count is the
        # projection onto (procedure, pc, locals, globals) — not len(path_edges).
        reached_states = {
            (procedure, pc, locals_, globals_)
            for (procedure, _entry_l, _entry_g, pc, locals_, globals_) in path_edges
        }
        return ReachabilityResult(
            reachable=reachable,
            algorithm="bebop-explicit",
            iterations=iterations,
            summary_nodes=len(path_edges),
            summary_states=len(reached_states),
            elapsed_seconds=elapsed,
            total_seconds=elapsed,
            stopped_early=reachable and early_stop,
            details={
                "path_edges": len(path_edges),
                "reached_states": len(reached_states),
                "summaries": sum(len(values) for values in summaries.values()),
            },
        )


def edge_index(proc_cfg, edge) -> int:
    """Index of a call edge within its procedure (used to re-find it later)."""
    return proc_cfg.call_edges.index(edge)


def run_bebop(
    program: Program,
    target_locations: Sequence[Tuple[int, int]],
    early_stop: bool = True,
) -> ReachabilityResult:
    """Convenience wrapper: build the solver and run one check."""
    return BebopSolver(program).check(target_locations, early_stop=early_stop)
