"""Explicit bounded context-switching exploration of concurrent programs.

This is the "eager" comparison engine for Figure 3 and the ground truth for
the symbolic bounded context-switching algorithm: a breadth-first exploration
of the concurrent program's configuration graph with at most ``k`` context
switches.  Every thread's configuration keeps an *explicit call stack*, so the
engine is exact for programs whose executions have bounded stacks (the
Bluetooth model and all generated concurrent benchmarks are non-recursive); a
configurable stack-depth bound guards against recursion, and exceeding it
raises instead of silently under-approximating.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..algorithms.result import ReachabilityResult
from ..boolprog import build_cfg, check_concurrent_program
from ..boolprog.concurrent import ConcurrentProgram
from ..boolprog.transform import merge_threads
from ..errors import ExplorationBudgetExceeded
from .semantics import ExplicitContext, GlobalVal, LocalVal

__all__ = ["ConcurrentExplicitSolver", "run_concurrent_explicit"]

#: One stack frame: (procedure, pc, locals, pending call-edge index or None).
Frame = Tuple[str, int, LocalVal, Optional[int]]
#: A thread configuration is its call stack (bottom ... top).
ThreadConf = Tuple[Frame, ...]
#: Global configuration: (active thread, switches used, globals, thread confs).
Configuration = Tuple[int, int, GlobalVal, Tuple[ThreadConf, ...]]


class ConcurrentExplicitSolver:
    """Explicit-state bounded context-switching reachability."""

    def __init__(self, program: ConcurrentProgram, validate: bool = True) -> None:
        if validate:
            check_concurrent_program(program)
        self.program = program
        self.merged, self.thread_mains = merge_threads(program)
        self.cfg = build_cfg(self.merged)
        self.context = ExplicitContext(self.cfg)

    # ------------------------------------------------------------------
    def _initial_configuration(self, first_thread: int) -> Configuration:
        globals_ = self.context.initial_globals(self.program.init)
        threads: List[ThreadConf] = []
        for main_name in self.thread_mains:
            frame: Frame = (
                main_name,
                self.cfg.procedure_cfg(main_name).entry,
                self.context.initial_locals(main_name),
                None,
            )
            threads.append((frame,))
        return (first_thread, 0, globals_, tuple(threads))

    def _thread_successors(
        self, stack: ThreadConf, globals_: GlobalVal, max_stack: int
    ) -> Iterator[Tuple[ThreadConf, GlobalVal]]:
        """One-step successors of the active thread (stack may grow/shrink)."""
        if not stack:
            return
        procedure, pc, locals_, _pending = stack[-1]
        proc_cfg = self.cfg.procedure_cfg(procedure)
        context = self.context
        for edge in proc_cfg.internal_edges:
            if edge.source != pc:
                continue
            for new_locals, new_globals in context.internal_successors(
                procedure, edge, locals_, globals_
            ):
                new_top: Frame = (procedure, edge.target, new_locals, None)
                yield stack[:-1] + (new_top,), new_globals
        for index, edge in enumerate(proc_cfg.call_edges):
            if edge.source != pc:
                continue
            if len(stack) >= max_stack:
                raise RecursionError(
                    "explicit concurrent exploration exceeded the stack bound; "
                    "the program is recursive — use the symbolic engine instead"
                )
            for callee_locals in context.call_entry_locals(procedure, edge, locals_, globals_):
                caller_frame: Frame = (procedure, pc, locals_, index)
                callee_frame: Frame = (
                    edge.callee,
                    self.cfg.procedure_cfg(edge.callee).entry,
                    callee_locals,
                    None,
                )
                yield stack[:-1] + (caller_frame, callee_frame), globals_
        if pc == proc_cfg.exit and len(stack) > 1:
            caller_proc, caller_pc, caller_locals, pending = stack[-2]
            assert pending is not None
            call_edge = self.cfg.procedure_cfg(caller_proc).call_edges[pending]
            new_locals, new_globals = context.apply_return(
                caller_proc, call_edge, caller_locals, locals_, globals_
            )
            caller_frame = (caller_proc, call_edge.return_pc, new_locals, None)
            yield stack[:-2] + (caller_frame,), new_globals

    # ------------------------------------------------------------------
    def check(
        self,
        target_locations: Sequence[Tuple[int, int]],
        context_switches: int,
        early_stop: bool = True,
        max_stack: int = 64,
        max_configurations: int = 2_000_000,
    ) -> ReachabilityResult:
        """Is a target location reachable within ``context_switches`` switches?"""
        started = time.perf_counter()
        targets = set(map(tuple, target_locations))
        module_of = self.cfg.module_of

        seen: Set[Configuration] = set()
        frontier: deque = deque()
        for first_thread in range(self.program.num_threads):
            configuration = self._initial_configuration(first_thread)
            seen.add(configuration)
            frontier.append(configuration)

        reachable = False
        iterations = 0
        while frontier:
            if len(seen) > max_configurations:
                raise ExplorationBudgetExceeded(
                    "explicit concurrent exploration exceeded its configuration budget",
                    resource="configurations",
                    consumed=len(seen),
                    budget=max_configurations,
                )
            active, switches, globals_, threads = frontier.popleft()
            iterations += 1
            # Target check on the active thread's top frame.
            stack = threads[active]
            if stack:
                procedure, pc, _locals, _pending = stack[-1]
                if (module_of(procedure), pc) in targets:
                    reachable = True
                    if early_stop:
                        break
            successors: List[Configuration] = []
            for new_stack, new_globals in self._thread_successors(stack, globals_, max_stack):
                new_threads = list(threads)
                new_threads[active] = new_stack
                successors.append((active, switches, new_globals, tuple(new_threads)))
            if switches < context_switches:
                for other in range(self.program.num_threads):
                    if other != active:
                        successors.append((other, switches + 1, globals_, threads))
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)

        elapsed = time.perf_counter() - started
        return ReachabilityResult(
            reachable=reachable,
            algorithm=f"explicit-cbr(k={context_switches})",
            iterations=iterations,
            summary_nodes=len(seen),
            summary_states=len(seen),
            elapsed_seconds=elapsed,
            total_seconds=elapsed,
            stopped_early=reachable and early_stop,
            details={"configurations": len(seen), "context_switches": context_switches},
        )


def run_concurrent_explicit(
    program: ConcurrentProgram,
    target_locations: Sequence[Tuple[int, int]],
    context_switches: int,
    early_stop: bool = True,
) -> ReachabilityResult:
    """Convenience wrapper: build the solver and run one check."""
    return ConcurrentExplicitSolver(program).check(
        target_locations, context_switches, early_stop=early_stop
    )
