"""Explicit-state building blocks shared by the baseline engines.

The explicit engines (the BEBOP-style summary solver and the MOPED-style
pushdown saturation) work with concrete valuations:

* a *global valuation* is a tuple of Booleans in the order of
  ``program.globals``;
* a *local valuation* of a procedure is a tuple of Booleans over that
  procedure's local slots (parameters, locals, return registers) in slot
  order.

Expression evaluation returns the **set** of possible Boolean values, because
the ``*`` expression may yield either; assignments therefore produce a set of
successor valuations.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from ..boolprog.ast import BinOp, Expr, Lit, Nondet, NotE, Procedure, Program, VarRef
from ..boolprog.cfg import CallEdge, InternalEdge, ProcedureCfg, ProgramCfg

__all__ = [
    "GlobalVal",
    "LocalVal",
    "ExplicitContext",
    "eval_expr",
    "eval_exprs",
]

GlobalVal = Tuple[bool, ...]
LocalVal = Tuple[bool, ...]


class ExplicitContext:
    """Variable lookup and successor computation for one program."""

    def __init__(self, cfg: ProgramCfg) -> None:
        self.cfg = cfg
        self.program = cfg.program
        self.global_index: Dict[str, int] = {
            name: index for index, name in enumerate(self.program.globals)
        }

    # -- valuations ------------------------------------------------------
    def initial_globals(self, init: Dict[str, bool] | None = None) -> GlobalVal:
        """All-False globals, overridden by an optional ``init`` mapping."""
        init = init or {}
        return tuple(bool(init.get(name, False)) for name in self.program.globals)

    def initial_locals(self, procedure: str) -> LocalVal:
        """All-False locals of a procedure."""
        return tuple(False for _ in self.cfg.procedure_cfg(procedure).slot_of)

    def slot(self, procedure: str, name: str) -> int:
        """Slot index of a local variable of a procedure."""
        return self.cfg.procedure_cfg(procedure).slot_of[name]

    def lookup(self, procedure: str, name: str, locals_: LocalVal, globals_: GlobalVal) -> bool:
        """Value of a variable in the given valuations."""
        slots = self.cfg.procedure_cfg(procedure).slot_of
        if name in slots:
            return locals_[slots[name]]
        return globals_[self.global_index[name]]

    # -- successor computation -------------------------------------------
    def internal_successors(
        self,
        procedure: str,
        edge: InternalEdge,
        locals_: LocalVal,
        globals_: GlobalVal,
    ) -> Iterator[Tuple[LocalVal, GlobalVal]]:
        """Successor valuations of one guarded simultaneous assignment."""
        guard_values = (
            eval_expr(edge.guard, self, procedure, locals_, globals_)
            if edge.guard is not None
            else {True}
        )
        if True not in guard_values:
            return
        if not edge.assigns:
            yield locals_, globals_
            return
        names = list(edge.assigns)
        value_sets = [
            eval_expr(edge.assigns[name], self, procedure, locals_, globals_) for name in names
        ]
        slots = self.cfg.procedure_cfg(procedure).slot_of
        for combo in product(*value_sets):
            new_locals = list(locals_)
            new_globals = list(globals_)
            for name, value in zip(names, combo):
                if name in slots:
                    new_locals[slots[name]] = value
                else:
                    new_globals[self.global_index[name]] = value
            yield tuple(new_locals), tuple(new_globals)

    def call_entry_locals(
        self,
        caller: str,
        edge: CallEdge,
        locals_: LocalVal,
        globals_: GlobalVal,
    ) -> Iterator[LocalVal]:
        """Possible initial local valuations of the callee for one call."""
        callee_cfg = self.cfg.procedure_cfg(edge.callee)
        callee = self.program.procedure(edge.callee)
        value_sets = [
            eval_expr(argument, self, caller, locals_, globals_) for argument in edge.args
        ]
        base = [False] * len(callee_cfg.slot_of)
        for combo in product(*value_sets):
            entry = list(base)
            for param, value in zip(callee.params, combo):
                entry[callee_cfg.slot_of[param]] = value
            yield tuple(entry)

    def apply_return(
        self,
        caller: str,
        edge: CallEdge,
        caller_locals: LocalVal,
        exit_locals: LocalVal,
        exit_globals: GlobalVal,
    ) -> Tuple[LocalVal, GlobalVal]:
        """Caller valuation after returning from ``edge`` with the given exit state."""
        callee_cfg = self.cfg.procedure_cfg(edge.callee)
        caller_slots = self.cfg.procedure_cfg(caller).slot_of
        new_locals = list(caller_locals)
        new_globals = list(exit_globals)
        for index, target in enumerate(edge.targets):
            value = exit_locals[callee_cfg.slot_of[f"__ret{index}"]]
            if target in caller_slots:
                new_locals[caller_slots[target]] = value
            else:
                new_globals[self.global_index[target]] = value
        return tuple(new_locals), tuple(new_globals)


def eval_expr(
    expression: Expr,
    context: ExplicitContext,
    procedure: str,
    locals_: LocalVal,
    globals_: GlobalVal,
) -> Set[bool]:
    """The set of possible values of an expression (``*`` yields both)."""
    if isinstance(expression, Lit):
        return {expression.value}
    if isinstance(expression, Nondet):
        return {False, True}
    if isinstance(expression, VarRef):
        return {context.lookup(procedure, expression.name, locals_, globals_)}
    if isinstance(expression, NotE):
        return {not value for value in eval_expr(expression.operand, context, procedure, locals_, globals_)}
    if isinstance(expression, BinOp):
        lefts = eval_expr(expression.left, context, procedure, locals_, globals_)
        rights = eval_expr(expression.right, context, procedure, locals_, globals_)
        results = set()
        for left in lefts:
            for right in rights:
                if expression.op == "&":
                    results.add(left and right)
                elif expression.op == "|":
                    results.add(left or right)
                elif expression.op == "^" or expression.op == "!=":
                    results.add(left != right)
                elif expression.op == "==":
                    results.add(left == right)
                else:
                    raise ValueError(f"unknown operator {expression.op!r}")
        return results
    raise TypeError(f"cannot evaluate expression {expression!r}")


def eval_exprs(
    expressions: Sequence[Expr],
    context: ExplicitContext,
    procedure: str,
    locals_: LocalVal,
    globals_: GlobalVal,
) -> Iterator[Tuple[bool, ...]]:
    """Cartesian product of the possible values of several expressions."""
    value_sets = [
        eval_expr(expression, context, procedure, locals_, globals_) for expression in expressions
    ]
    for combo in product(*value_sets):
        yield tuple(combo)
