"""Random well-formed Boolean programs for differential testing.

The generator produces small but structurally varied programs (branches,
loops, calls with parameters and return values, nondeterminism, global
updates) from a seed, so the property-based tests can check that the
symbolic Getafix algorithms, the explicit BEBOP-style solver and the
MOPED-style pushdown solver all agree on reachability verdicts.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..boolprog import Program, check_program, parse_program

__all__ = ["random_program", "random_program_source"]


def _expression(rng: random.Random, variables: List[str], depth: int = 2) -> str:
    choices = ["T", "F", "*"] + variables
    if depth <= 0 or rng.random() < 0.4:
        return rng.choice(choices)
    op = rng.choice(["&", "|", "^"])
    left = _expression(rng, variables, depth - 1)
    right = _expression(rng, variables, depth - 1)
    if rng.random() < 0.3:
        left = f"!{left}"
    return f"({left} {op} {right})"


def _statements(
    rng: random.Random,
    variables: List[str],
    callees: List[str],
    budget: int,
    depth: int = 2,
) -> List[str]:
    lines: List[str] = []
    count = rng.randint(1, max(1, budget))
    for _ in range(count):
        kind = rng.random()
        if kind < 0.35 or not variables:
            target = rng.choice(variables) if variables else None
            if target is None:
                lines.append("skip;")
            else:
                lines.append(f"{target} := {_expression(rng, variables)};")
        elif kind < 0.5 and depth > 0:
            condition = _expression(rng, variables)
            then_branch = _statements(rng, variables, callees, budget - 1, depth - 1)
            else_branch = _statements(rng, variables, callees, budget - 1, depth - 1)
            lines.append(
                f"if ({condition}) then\n"
                + "\n".join(then_branch)
                + "\nelse\n"
                + "\n".join(else_branch)
                + "\nfi"
            )
        elif kind < 0.62 and depth > 0:
            condition = rng.choice(variables)
            body = _statements(rng, variables, callees, 1, depth - 1)
            # Guarantee progress so the loop body shrinks the state space.
            body.append(f"{condition} := {condition} & *;")
            lines.append(f"while ({condition}) do\n" + "\n".join(body) + "\nod")
        elif kind < 0.85 and callees:
            callee = rng.choice(callees)
            target = rng.choice(variables)
            argument = _expression(rng, variables)
            lines.append(f"{target} := {callee}({argument});")
        else:
            lines.append("skip;")
    return lines


def random_program_source(seed: int, num_globals: int = 2, num_helpers: int = 2) -> str:
    """Source text of a random program; the target label is ``main:target``."""
    rng = random.Random(seed)
    global_names = [f"g{i}" for i in range(num_globals)]
    helper_names = [f"h{i}" for i in range(num_helpers)]
    parts: List[str] = []
    if global_names:
        parts.append("decl " + ", ".join(global_names) + ";")

    main_locals = ["x", "y"]
    main_vars = global_names + main_locals
    main_body = _statements(rng, main_vars, helper_names, budget=4)
    guard = _expression(rng, main_vars)
    parts.append(
        "main() begin\n"
        "decl x, y;\n" + "\n".join(main_body) + f"\nif ({guard}) then\n  target: skip;\nfi\nend"
    )
    for index, name in enumerate(helper_names):
        local_vars = global_names + ["a", "t"]
        # Helpers may call later helpers only, so call chains are acyclic
        # except for an optional bounded self-recursion.
        callable_helpers = helper_names[index + 1 :]
        body = _statements(rng, local_vars, callable_helpers, budget=3)
        parts.append(
            f"{name}(a) begin\n"
            "decl t;\n" + "\n".join(body) + f"\nreturn {_expression(rng, local_vars)};\nend"
        )
    return "\n\n".join(parts)


def random_program(seed: int, num_globals: int = 2, num_helpers: int = 2) -> Program:
    """A parsed and statically checked random program."""
    program = parse_program(random_program_source(seed, num_globals, num_helpers), name=f"random-{seed}")
    check_program(program)
    return program
