"""Synthetic substitute for the SLAM regression suite.

The paper's first benchmark suite is a set of 177 small Boolean programs (99
with a reachable target, 79 without) meant to test language-feature handling.
The original files are not distributed, so this module generates a
deterministic family of small programs with the same purpose: each template
exercises one language feature (branching, loops, procedure calls, multiple
return values, recursion, gotos, nondeterminism, asserts) and comes in a
*positive* variant (target reachable) and a *negative* variant (target
unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..boolprog import Program, parse_program

__all__ = ["RegressionCase", "regression_case", "regression_suite", "TEMPLATE_NAMES"]


@dataclass
class RegressionCase:
    """One generated regression program with its expected verdict."""

    name: str
    program: Program
    target: str
    expected: bool


def _branching(positive: bool) -> Tuple[str, str]:
    condition = "x | y" if positive else "x & !x"
    return (
        f"""
        decl g;
        main() begin
          decl x, y;
          x := T;
          y := *;
          if ({condition}) then
            target: skip;
          else
            skip;
          fi
        end
        """,
        "main:target",
    )


def _loops(positive: bool) -> Tuple[str, str]:
    exit_value = "T" if positive else "F"
    return (
        f"""
        main() begin
          decl i, found;
          i := T;
          found := F;
          while (i) do
            i := *;
            found := {exit_value};
          od
          if (found) then
            target: skip;
          fi
        end
        """,
        "main:target",
    )


def _call_chain(positive: bool) -> Tuple[str, str]:
    flip = "a" if positive else "!a"
    return (
        f"""
        decl g;
        main() begin
          decl r;
          r := level1(T);
          if (r) then
            target: skip;
          fi
        end
        level1(a) begin
          decl r;
          r := level2({flip});
          return r;
        end
        level2(b) begin
          return b;
        end
        """,
        "main:target",
    )


def _multi_return(positive: bool) -> Tuple[str, str]:
    pick = "lo" if positive else "hi & lo"
    return (
        f"""
        main() begin
          decl hi, lo;
          hi, lo := split(T);
          if ({pick}) then
            target: skip;
          fi
        end
        split(a) begin
          return !a, a;
        end
        """,
        "main:target",
    )


def _recursion(positive: bool) -> Tuple[str, str]:
    base = "T" if positive else "F"
    return (
        f"""
        main() begin
          decl r;
          r := dig(*);
          if (r) then
            target: skip;
          fi
        end
        dig(depth) begin
          decl r;
          if (depth) then
            r := dig(*);
            return r;
          fi
          return {base};
        end
        """,
        "main:target",
    )


def _globals_and_calls(positive: bool) -> Tuple[str, str]:
    setter = "T" if positive else "F"
    return (
        f"""
        decl flag, shadow;
        main() begin
          call set_flag({setter});
          call copy_flag();
          if (shadow) then
            target: skip;
          fi
        end
        set_flag(v) begin
          flag := v;
        end
        copy_flag() begin
          shadow := flag;
        end
        """,
        "main:target",
    )


def _goto_feature(positive: bool) -> Tuple[str, str]:
    guard = "x" if positive else "!x"
    return (
        f"""
        main() begin
          decl x;
          x := T;
          if ({guard}) then
            goto hit;
          fi
          goto finish;
          hit: skip;
          target: skip;
          finish: skip;
        end
        """,
        "main:target",
    )


def _assert_feature(positive: bool) -> Tuple[str, str]:
    locked_twice = "call acquire(); call acquire();" if positive else "call acquire(); call release(); call acquire();"
    return (
        f"""
        decl lock;
        main() begin
          {locked_twice}
        end
        acquire() begin
          assert(!lock);
          lock := T;
        end
        release() begin
          lock := F;
        end
        """,
        "error",
    )


def _assume_feature(positive: bool) -> Tuple[str, str]:
    constraint = "x" if positive else "x & !x"
    return (
        f"""
        main() begin
          decl x;
          x := *;
          assume({constraint});
          if (x) then
            target: skip;
          fi
        end
        """,
        "main:target",
    )


def _nondet_parameters(positive: bool) -> Tuple[str, str]:
    need = "a & b" if positive else "a & !a"
    return (
        f"""
        main() begin
          decl r;
          r := both(*, *);
          if (r) then
            target: skip;
          fi
        end
        both(a, b) begin
          return {need};
        end
        """,
        "main:target",
    )


_TEMPLATES: Dict[str, Callable[[bool], Tuple[str, str]]] = {
    "branching": _branching,
    "loops": _loops,
    "call_chain": _call_chain,
    "multi_return": _multi_return,
    "recursion": _recursion,
    "globals": _globals_and_calls,
    "goto": _goto_feature,
    "assert": _assert_feature,
    "assume": _assume_feature,
    "nondet_params": _nondet_parameters,
}

TEMPLATE_NAMES = tuple(_TEMPLATES)


def regression_case(template: str, positive: bool) -> RegressionCase:
    """Build a single regression case from a template name and polarity."""
    if template not in _TEMPLATES:
        raise KeyError(f"unknown regression template {template!r}")
    source, target = _TEMPLATES[template](positive)
    suffix = "pos" if positive else "neg"
    name = f"regression-{template}-{suffix}"
    return RegressionCase(
        name=name,
        program=parse_program(source, name=name),
        target=target,
        expected=positive,
    )


def regression_suite(positive: bool, count: int = len(_TEMPLATES)) -> List[RegressionCase]:
    """A list of ``count`` regression cases of one polarity (cycling templates)."""
    names = list(_TEMPLATES)
    cases = []
    for index in range(count):
        cases.append(regression_case(names[index % len(names)], positive))
    return cases
