"""Synthetic substitute for the SLAM device-driver suites.

The paper's driver benchmarks (iscsiprt, floppy, iscsi, ...) are Boolean
abstractions of Windows device drivers produced by SLAM's predicate
abstraction: large programs with many procedures, a handful of status/lock
globals, mostly deterministic control flow and a lock-usage or completion
protocol whose violation is the target.  The original .bp files are not
redistributable, so this generator produces programs with the same shape:

* a dispatcher ``main`` that nondeterministically picks IRP handlers,
* one handler procedure per "device request" that acquires the global lock,
  toggles per-request status flags, calls shared helper procedures and
  releases the lock,
* a completion routine protected by ``assert`` statements encoding the lock
  discipline; the *positive* variant plants exactly one handler that forgets
  to release the lock before completing, the *negative* variant keeps the
  discipline everywhere,
* the abstraction artifacts SLAM leaves behind: per-flag ``irql`` status
  globals and per-handler trace locals that are written but never branched
  on (dead predicates), and an uncalled ``diagnostics`` routine — the
  material :mod:`repro.analysis` measurably strips before encoding.

Sizes (number of handlers, helper depth, flag count) are parameters, so the
benchmark harness can sweep program size the way Figure 2 aggregates suites of
different sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..boolprog import Program, parse_program

__all__ = ["DriverSpec", "make_driver", "driver_suite"]


@dataclass
class DriverSpec:
    """Size parameters of a generated driver benchmark."""

    name: str
    handlers: int = 4
    flags: int = 3
    helpers: int = 2
    positive: bool = True

    @property
    def target(self) -> str:
        return "error"


def _helper(index: int, flags: int) -> str:
    flag = index % max(1, flags)
    return f"""
    helper{index}(v) begin
      decl tmp;
      tmp := v ^ flag{flag};
      if (tmp) then
        flag{flag} := !flag{flag};
      else
        flag{flag} := v;
      fi
      return tmp;
    end
    """


def _handler(index: int, spec: DriverSpec, buggy: bool) -> str:
    flag = index % max(1, spec.flags)
    helper = index % max(1, spec.helpers)
    release = "" if buggy else "call release_lock();"
    return f"""
    handler{index}(arg) begin
      decl ok, status, trace;
      trace := arg;
      call acquire_lock();
      irql{flag} := T;
      status := arg ^ flag{flag};
      ok := helper{helper}(status);
      if (ok) then
        flag{flag} := T;
      else
        flag{flag} := F;
      fi
      trace := !trace;
      irql{flag} := F;
      {release}
      call complete_request();
    end
    """


def make_driver(spec: DriverSpec) -> Program:
    """Generate one driver-shaped Boolean program."""
    flags = " ".join(f"decl flag{i};" for i in range(spec.flags))
    irqls = " ".join(f"decl irql{i};" for i in range(spec.flags))
    helpers = "\n".join(_helper(i, spec.flags) for i in range(spec.helpers))
    buggy_handler = spec.handlers - 1 if spec.positive else -1
    handlers = "\n".join(
        _handler(i, spec, buggy=(i == buggy_handler)) for i in range(spec.handlers)
    )
    dispatch = "\n".join(
        f"if (choice{i}) then call handler{i}(*); fi" for i in range(spec.handlers)
    )
    choices = ", ".join(f"choice{i}" for i in range(spec.handlers))
    stars = ", ".join("*" for _ in range(spec.handlers))
    source = f"""
    decl lock;
    {flags}
    {irqls}

    main() begin
      decl {choices};
      decl running;
      running := T;
      while (running) do
        {choices} := {stars};
        {dispatch}
        running := *;
      od
    end

    acquire_lock() begin
      assume(!lock);
      lock := T;
    end

    release_lock() begin
      lock := F;
    end

    complete_request() begin
      // The completion protocol: the lock must have been released before a
      // request is completed.
      assert(!lock);
      lock := F;
    end

    diagnostics(v) begin
      // Dead SLAM artifact: never called by any dispatch path.
      decl snap;
      snap := v ^ lock;
      if (snap) then
        snap := !snap;
      fi
    end

    {helpers}

    {handlers}
    """
    return parse_program(source, name=spec.name)


def driver_suite(positive: bool, sizes: List[int] = (2, 3, 4)) -> List[DriverSpec]:
    """A suite of driver specs of increasing size and one polarity."""
    suffix = "pos" if positive else "neg"
    return [
        DriverSpec(
            name=f"driver-{suffix}-{size}",
            handlers=size,
            flags=min(4, size),
            helpers=max(1, size // 2),
            positive=positive,
        )
        for size in sizes
    ]
