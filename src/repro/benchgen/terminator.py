"""Synthetic substitute for the TERMINATOR benchmarks.

The paper's TERMINATOR programs are Boolean abstractions produced while
proving termination: relatively few procedures, many global "ranking" bits and
complex loop structure, which makes the reachable-state BDDs much larger than
for the driver suites (and is where GETAFIX beats the other tools).  This
generator reproduces that shape: a multi-bit counter encoded in Boolean
globals is manipulated by nested loops and a recursive "decrease" procedure;
the target asks whether a (parity/overflow) condition is reachable.

Each benchmark comes in the paper's two encodings of the ``dead`` statement:

* ``iterative`` — dead variables are re-assigned one by one through
  conditional statements,
* ``schoose`` — dead variables are reset with a single nondeterministic
  assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..boolprog import Program, parse_program

__all__ = ["TerminatorSpec", "make_terminator", "terminator_suite"]


@dataclass
class TerminatorSpec:
    """Parameters of a generated TERMINATOR-like benchmark."""

    name: str
    counter_bits: int = 3
    variant: str = "schoose"  # or "iterative"
    positive: bool = True

    @property
    def target(self) -> str:
        return "main:target"


def _increment(bits: int) -> str:
    """A ripple-carry increment of the global counter c0..c{bits-1}."""
    lines = []
    carry = "T"
    updates = []
    for index in range(bits):
        updates.append(f"c{index} ^ ({carry})")
        carry = f"({carry}) & c{index}"
    targets = ", ".join(f"c{i}" for i in range(bits))
    values = ", ".join(updates)
    lines.append(f"{targets} := {values};")
    return "\n".join(lines)


def _reset(bits: int, variant: str) -> str:
    """Reset the scratch bits, in the paper's two styles of handling `dead`."""
    if variant == "schoose":
        targets = ", ".join(f"s{i}" for i in range(bits))
        stars = ", ".join("*" for _ in range(bits))
        return f"{targets} := {stars};"
    lines = []
    for index in range(bits):
        lines.append(f"if (*) then s{index} := T; else s{index} := F; fi")
    return "\n".join(lines)


def make_terminator(spec: TerminatorSpec) -> Program:
    """Generate one TERMINATOR-like Boolean program."""
    bits = spec.counter_bits
    counter_decl = " ".join(f"decl c{i};" for i in range(bits))
    scratch_decl = " ".join(f"decl s{i};" for i in range(bits))
    all_high = " & ".join(f"c{i}" for i in range(bits))
    # In the negative variant the loop exits before the counter can saturate.
    guard = "T" if spec.positive else f"!c{bits - 1}"
    source = f"""
    {counter_decl}
    {scratch_decl}
    decl phase;

    main() begin
      decl rounds, go;
      rounds := T;
      while (rounds) do
        go := ranked({guard});
        if (go) then
          {_increment(bits)}
        fi
        {_reset(bits, spec.variant)}
        call mix();
        if ({all_high}) then
          target: skip;
        fi
        rounds := *;
      od
    end

    ranked(enable) begin
      decl keep;
      keep := enable & !phase;
      phase := !phase;
      if (keep) then
        return T;
      fi
      return enable & phase;
    end

    mix() begin
      decl any;
      any := {" | ".join(f"s{i}" for i in range(bits))};
      if (any) then
        phase := !phase;
      fi
    end
    """
    return parse_program(source, name=spec.name)


def terminator_suite(counter_bits: List[int] = (2, 3), positive: bool = True) -> List[TerminatorSpec]:
    """Both encoding variants for a range of counter widths."""
    specs = []
    for bits in counter_bits:
        for variant in ("iterative", "schoose"):
            suffix = "pos" if positive else "neg"
            specs.append(
                TerminatorSpec(
                    name=f"terminator-{variant}-{bits}b-{suffix}",
                    counter_bits=bits,
                    variant=variant,
                    positive=positive,
                )
            )
    return specs
