"""Benchmark-program generators (substitutes for the paper's proprietary suites)."""

from .regression import RegressionCase, regression_case, regression_suite, TEMPLATE_NAMES
from .drivers import DriverSpec, driver_suite, make_driver
from .terminator import TerminatorSpec, make_terminator, terminator_suite
from .bluetooth import BLUETOOTH_CONFIGURATIONS, make_bluetooth
from .random_programs import random_program, random_program_source

__all__ = [
    "RegressionCase",
    "regression_case",
    "regression_suite",
    "TEMPLATE_NAMES",
    "DriverSpec",
    "driver_suite",
    "make_driver",
    "TerminatorSpec",
    "make_terminator",
    "terminator_suite",
    "BLUETOOTH_CONFIGURATIONS",
    "make_bluetooth",
    "random_program",
    "random_program_source",
]
