"""Boolean model of the Windows NT Bluetooth driver (Figure 3's benchmark).

The model follows the well-known abstraction used by Qadeer–Wu (KISS) and the
context-bounded-analysis literature: a driver with two kinds of threads,

* *adders* perform I/O: they increment a pending-I/O counter, check the
  stopping flag, do the I/O (which must not happen after the driver stopped —
  the assertion), and decrement the counter;
* *stoppers* stop the driver: they raise the stopping flag, release their own
  reference to the counter, wait for the counter to hit zero (the stopping
  event) and then mark the driver stopped.

The pending-I/O counter is abstracted to two Boolean bits (values 0..3, which
is exact for the configurations of Figure 3: at most two adders and the
initial reference).  Shared variables: ``pio0``, ``pio1`` (the counter),
``stoppingFlag``, ``stoppingEvent``, ``stopped``.

Known behaviour (matching the paper's Figure 3): with one adder and one
stopper the assertion cannot fail within six context switches; adding a second
stopper or a second adder makes the assertion violable with three to four
context switches.
"""

from __future__ import annotations

from ..boolprog import ConcurrentProgram, parse_concurrent_program

__all__ = ["make_bluetooth", "BLUETOOTH_CONFIGURATIONS"]

#: The four thread configurations evaluated in Figure 3.
BLUETOOTH_CONFIGURATIONS = {
    "1A1S": (1, 1),
    "1A2S": (1, 2),
    "2A1S": (2, 1),
    "2A2S": (2, 2),
}

_ADDER = """
thread adder{index} begin
  main() begin
    decl status;
    status := io_increment();
    if (status) then
      // Perform the I/O: the driver must not have been stopped under us.
      assert(!stopped);
      call io_decrement();
    fi
  end

  io_increment() begin
    decl t0, t1;
    // pendingIo++ — a non-atomic read/modify/write of the 2-bit counter, as
    // in the driver (the lost-update race between two adders is what makes
    // the two-adder configuration violable).
    t0, t1 := pio0, pio1;
    t0, t1 := !t0, t1 ^ t0;
    pio0, pio1 := t0, t1;
    if (stoppingFlag) then
      call io_decrement();
      return F;
    fi
    return T;
  end

  io_decrement() begin
    // pendingIo--; when it reaches zero, signal the stopping event.
    pio0, pio1 := !pio0, pio1 ^ !pio0;
    if (!pio0 & !pio1) then
      stoppingEvent := T;
    fi
  end
end
"""

_STOPPER = """
thread stopper{index} begin
  main() begin
    stoppingFlag := T;
    call io_decrement();
    // WaitForSingleObject(stoppingEvent): block until the event is signalled.
    assume(stoppingEvent);
    stopped := T;
  end

  io_decrement() begin
    pio0, pio1 := !pio0, pio1 ^ !pio0;
    if (!pio0 & !pio1) then
      stoppingEvent := T;
    fi
  end
end
"""


def make_bluetooth(adders: int = 1, stoppers: int = 1) -> ConcurrentProgram:
    """Build the Bluetooth model with the given number of adder/stopper threads."""
    if adders < 1 or stoppers < 1:
        raise ValueError("the Bluetooth model needs at least one adder and one stopper")
    threads = []
    for index in range(adders):
        threads.append(_ADDER.format(index=index + 1))
    for index in range(stoppers):
        threads.append(_STOPPER.format(index=index + 1))
    source = (
        "shared decl pio0, pio1, stoppingFlag, stoppingEvent, stopped;\n"
        # pendingIo starts at 1 (the driver holds one reference).
        "init pio0 := T, pio1 := F, stoppingFlag := F, stoppingEvent := F, stopped := F;\n"
        + "\n".join(threads)
    )
    return parse_concurrent_program(source, name=f"bluetooth-{adders}A{stoppers}S")
