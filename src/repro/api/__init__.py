"""Session-oriented public API: compile once, query many times.

:class:`AnalysisSession` owns the compiled artifacts of one program
(validated AST, CFG, encoder, per-algorithm symbolic backends, template
BDDs, compiled query plans, retained fixed-point interpretations) and
answers repeated reachability queries against them; :class:`SessionSpec`
is its picklable plain-data form for shipping into worker processes.  See
:mod:`repro.api.session` for the per-algorithm reuse matrix.
"""

from .session import AnalysisSession, SessionSpec, SolveInfo

__all__ = ["AnalysisSession", "SessionSpec", "SolveInfo"]
