"""Compile-once / query-many analysis sessions.

GETAFIX's Figure 1 pipeline is a staged compiler — translate the program
into template relations, pick a fixed-point formula, evaluate it — but a
monolithic ``run_sequential(program, targets)`` call re-runs every stage per
query.  An :class:`AnalysisSession` owns the compiled artifacts of ONE
program for its whole lifetime and answers many reachability queries
against them, in the style of incremental solver interfaces (persistent
solver state, cheap repeated queries):

* **Built once at construction** — static validation (``check_program``),
  the CFG, the :class:`~repro.encode.templates.SequentialEncoder`.
* **Built once per algorithm** (lazily) — the
  :class:`~repro.algorithms.common.AlgorithmSpec`, a private
  :class:`~repro.fixedpoint.symbolic.SymbolicBackend` (its own
  ``BddManager``), the six target-independent template BDDs and the
  compiled query plan.
* **Built once per (algorithm, target-signature)** — the ``Target``
  template BDD.  The *signature* of a query is the sorted tuple of its
  (module, pc) locations; repeated checks of the same signature reuse the
  cached BDD.
* **Retained across queries** — fixed-point interpretations, pinned via the
  backend's retained-interpretation protocol
  (:meth:`~repro.fixedpoint.symbolic.SymbolicBackend.retain` /
  :meth:`~repro.fixedpoint.symbolic.SymbolicBackend.release`), so the
  manager's mark-and-sweep collector treats them as external roots between
  queries.

Reuse matrix (what each algorithm can share between queries)
------------------------------------------------------------
All three sequential equation systems in this reproduction are
*target-free*: ``Target`` is an input relation of the system but no
equation body mentions it — only the reachability query does.  The summary
fixed point is therefore target-independent and fully reusable:

============  ==========================  =================================
algorithm     retained summary (solve)    warm start from early-stopped run
============  ==========================  =================================
``summary``   yes — query post-pass       yes (monotone, simultaneous)
``ef``        yes — query post-pass       yes (monotone, nested)
``ef-opt``    yes — query post-pass       no — the ``Relevant`` frontier
                                          relation is non-monotone, so a
                                          partial iterate is not a sound
                                          seed; compiled plans, templates
                                          and Target BDDs are still reused
============  ==========================  =================================

``solve()`` computes the full fixed point (no early stop) and retains it;
every later ``check(target)`` is then a query post-pass: encode (or fetch)
the Target BDD, evaluate the compiled query plan under the retained
interpretations, done.  Without a prior ``solve()``, ``check`` runs the
classic per-target evaluation (early stop included) against the compiled
artifacts; a run that reaches the fixed point anyway is promoted to the
retained summary, and an early-stopped run of a *monotone* algorithm is
retained as a warm-start seed — monotone Kleene iteration resumes exactly
where the seed run left off, so no work is repeated.  A hypothetical
target-dependent system (one whose equations mention ``Target``) is
detected and never summary-cached or warm-started.

``close()`` releases every compiled artifact and retained edge back to the
manager; after a sweep the manager is at its empty baseline
(``external_references() == 0``).
"""

from __future__ import annotations

import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..algorithms.engine import SEQUENTIAL_ALGORITHMS
from ..algorithms.result import ReachabilityResult
from ..analysis.passes import PassReport, normalise_slice_targets
from ..analysis.passes import optimize as optimize_program
from ..bdd import BddError, BddManager
from ..bdd import snapshot as bdd_snapshot
from ..bdd._array import ArrayBddManager
from ..boolprog import Program, build_cfg, check_program, parse_program
from ..encode.templates import SequentialEncoder, TemplateSet
from ..errors import ResourceExhausted
from ..fixedpoint import evaluate_nested, evaluate_simultaneous
from ..fixedpoint.evaluator import EvaluationResult
from ..fixedpoint.symbolic import SymbolicBackend
from ..frontends.getafix import TargetSpec, resolve_target_locations
from ..limits import ResourceLimits
from ..testing import faults

__all__ = ["AnalysisSession", "SessionSnapshot", "SessionSpec", "SolveInfo"]

#: Algorithms whose evaluation is plain monotone Kleene iteration, making an
#: early-stopped intermediate iterate a sound warm-start seed.
WARM_START_ALGORITHMS = frozenset({"summary", "ef"})

#: The target signature type: sorted, duplicate-free (module, pc) pairs.
TargetSignature = Tuple[Tuple[int, int], ...]


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


@dataclass(frozen=True)
class SessionSpec:
    """Picklable description of a session, for shipping into workers.

    A :class:`AnalysisSession` holds BDD managers, compiled plans and GC
    hooks — none of which may cross a process boundary (see the ownership
    contract in :mod:`repro.parallel.shards`).  A spec is the plain-data
    form: program source (or a parsed, picklable
    :class:`~repro.boolprog.Program`) plus construction options.  Workers
    call :meth:`open` to build the real session locally.
    """

    program: Union[str, Program]
    default_algorithm: str = "ef-opt"
    validate: bool = True
    max_iterations: int = 100_000
    limits: Optional[ResourceLimits] = None
    optimize: int = 0
    slice_targets: Optional[Tuple[str, ...]] = None

    def open(self) -> "AnalysisSession":
        """Build the session this spec describes (in the calling process)."""
        return AnalysisSession(
            self.program,
            default_algorithm=self.default_algorithm,
            validate=self.validate,
            max_iterations=self.max_iterations,
            limits=self.limits,
            optimize=self.optimize,
            slice_targets=self.slice_targets,
        )

    def is_picklable(self) -> bool:
        """Whether this spec can cross a process boundary."""
        try:
            pickle.dumps(self)
            return True
        except Exception:
            return False


@dataclass
class SolveInfo:
    """Outcome of :meth:`AnalysisSession.solve` (the retained fixed point)."""

    algorithm: str
    iterations: int
    equation_evaluations: int
    elapsed_seconds: float
    reused: bool = False
    warm_started: bool = False


@dataclass
class _Retained:
    """A retained set of fixed-point interpretations (edges are pinned).

    ``summary_nodes``/``summary_states`` memoise the target relation's BDD
    size and tuple count: they are identical for every post-pass query of
    one solve, and recounting would walk the (possibly large) summary BDD
    per check.
    """

    interps: Dict[str, int]
    iterations: int
    equation_evaluations: int
    elapsed_seconds: float
    signature: Optional[TargetSignature] = None
    summary_nodes: Optional[int] = None
    summary_states: Optional[int] = None


@dataclass(frozen=True)
class SessionSnapshot:
    """Picklable handle to a frozen solved session (shared-memory segment).

    Produced by :meth:`AnalysisSession.freeze` after a ``solve()``; consumed
    by :meth:`AnalysisSession.from_snapshot`, which attaches the segment
    copy-free and serves query post-passes against the frozen fixed point.
    The handle itself is plain data (segment name, program, retained
    interpretation edges, solve counters) and crosses process boundaries
    freely; the multi-megabyte node table stays in the segment.

    Ownership: the process that accepts the handle (shard driver, service
    daemon) is responsible for :meth:`unlink`; the freezer calls
    :meth:`disown` after handing it off (see :mod:`repro.bdd.snapshot`).
    """

    segment: str
    program: Union[str, Program]
    algorithm: str
    interps: Dict[str, int]
    iterations: int
    equation_evaluations: int
    elapsed_seconds: float
    summary_nodes: Optional[int] = None
    summary_states: Optional[int] = None

    def disown(self) -> None:
        """Drop the freezer's resource-tracker claim (after handing off)."""
        bdd_snapshot.disown(self.segment)

    def unlink(self) -> bool:
        """Destroy the segment (owner's cleanup path; idempotent)."""
        return bdd_snapshot.unlink(self.segment)


class _AlgorithmState:
    """Everything the session compiled for one algorithm (private manager)."""

    def __init__(
        self,
        session: "AnalysisSession",
        algorithm: str,
        manager: Optional[BddManager] = None,
    ) -> None:
        self.algorithm = algorithm
        started = time.perf_counter()
        self.spec = SEQUENTIAL_ALGORITHMS[algorithm](session.encoder)
        self.backend = SymbolicBackend(self.spec.system, manager=manager)
        if session.limits is not None:
            # The node budget is a property of the state's private manager
            # and persists across queries; the deadline is armed per query
            # (see AnalysisSession._governed).  Set it before encoding so
            # the base templates are governed too.
            self.backend.manager.set_node_budget(session.limits.node_budget)
        self.base: TemplateSet = session.encoder.encode_base(self.backend)
        self.base_interps: Dict[str, int] = self.base.interps()
        for edge in self.base_interps.values():
            self.backend.retain(edge)
        self.query_plan = self.backend.compile_formula(self.spec.query)
        self.encode_seconds = time.perf_counter() - started
        # Target BDDs keyed by target signature; the session's public cache
        # key is therefore (algorithm, signature) — this state IS the
        # algorithm half of the key.
        self.target_cache: Dict[TargetSignature, int] = {}
        # A system is summary-cacheable only if no equation body mentions
        # Target (true for all three shipped algorithms).
        self.target_free = not any(
            "Target" in self.spec.system.equation(name).referenced_relations()
            for name in self.spec.system.equations
        )
        self.solved: Optional[_Retained] = None
        self.partial: Optional[_Retained] = None
        # Lazily-built witness extractor (repro.witness); it GC-pins its
        # Kleene layers in this state's manager, so the state owns its close.
        self.witness_extractor = None
        self.solve_count = 0
        self.query_count = 0
        self.reused_query_count = 0

    # -- artifacts -------------------------------------------------------
    def target_edge(self, encoder: SequentialEncoder, signature: TargetSignature) -> int:
        edge = self.target_cache.get(signature)
        if edge is None:
            edge = encoder.encode_target(self.backend, list(signature))
            self.backend.retain(edge)
            self.target_cache[signature] = edge
        return edge

    def query_holds(self, interps: Mapping[str, int]) -> bool:
        return self.query_plan.eval(self.backend, interps) == self.backend.manager.TRUE

    def retain_interps(self, result: EvaluationResult, *, iterations: int,
                       equation_evaluations: int, elapsed_seconds: float,
                       signature: Optional[TargetSignature]) -> _Retained:
        interps = {
            name: edge
            for name, edge in result.interpretations.items()
            if name in self.spec.system.equations
        }
        for edge in interps.values():
            self.backend.retain(edge)
        return _Retained(
            interps=interps,
            iterations=iterations,
            equation_evaluations=equation_evaluations,
            elapsed_seconds=elapsed_seconds,
            signature=signature,
        )

    def drop_retained(self, retained: Optional[_Retained]) -> None:
        if retained is None:
            return
        for edge in retained.interps.values():
            self.backend.release(edge)

    def close(self) -> None:
        """Release every artifact; the manager returns to its baseline."""
        if self.witness_extractor is not None:
            self.witness_extractor.close()
            self.witness_extractor = None
        self.drop_retained(self.solved)
        self.drop_retained(self.partial)
        self.solved = self.partial = None
        self.target_cache.clear()
        self.backend.close()
        self.backend.context.clear_caches()


class AnalysisSession:
    """A program-scoped analysis session: compile once, query many times.

    Parameters
    ----------
    program:
        Source text or an already-parsed sequential
        :class:`~repro.boolprog.Program`.
    default_algorithm:
        The algorithm used when ``solve``/``check`` are called without one.
    validate:
        Run ``check_program`` once, at construction (never again per query).
    max_iterations:
        Outer-iteration budget passed to the fixed-point evaluators.
    limits:
        Optional :class:`~repro.limits.ResourceLimits` envelope.  The node
        budget is installed on every compiled algorithm's private manager;
        the wall-clock deadline is armed per query; ``max_iterations``
        (when set in the limits) overrides the parameter of the same name.
        A query that exhausts the envelope raises the typed
        :class:`~repro.errors.ResourceExhausted` subclass and leaves the
        session usable: compiled artifacts and retained interpretations
        survive, and later queries (or :meth:`set_limits`) proceed normally.
    optimize:
        Static pre-analysis level (0, 1 or 2; see
        :func:`repro.analysis.optimize`).  The pass pipeline runs ONCE, at
        construction, and every compiled artifact — CFG, encoder, template
        BDDs, retained fixed points, frozen snapshots — is built from the
        optimized program.  Level 2 renumbers program counters, so numeric
        ``(module, pc)`` targets are rejected once the report records
        structural changes; string specs (``"error"``, ``"proc:label"``)
        resolve against the optimized CFG and stay exact.  A pipeline crash
        degrades gracefully: the session falls back to the raw program and
        records the failure in ``optimize_report.failed``.
    slice_targets:
        String target specs the level-2 slicer may specialise the program
        towards.  A sliced session only answers queries whose specs are a
        subset of ``slice_targets`` (slicing discards behaviour irrelevant
        to those targets, so other queries would be unsound).  Ignored
        below level 2.

    Sessions are context managers; leaving the ``with`` block closes them.
    """

    def __init__(
        self,
        program: Union[str, Program],
        *,
        default_algorithm: str = "ef-opt",
        validate: bool = True,
        max_iterations: int = 100_000,
        limits: Optional[ResourceLimits] = None,
        optimize: int = 0,
        slice_targets: Optional[Sequence[str]] = None,
    ) -> None:
        if default_algorithm not in SEQUENTIAL_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {default_algorithm!r}; "
                f"choose one of {sorted(SEQUENTIAL_ALGORITHMS)}"
            )
        self.program = program if isinstance(program, Program) else parse_program(program)
        self.default_algorithm = default_algorithm
        self.limits = limits
        self._default_max_iterations = max_iterations
        if limits is not None and limits.max_iterations is not None:
            max_iterations = limits.max_iterations
        self.max_iterations = max_iterations
        self.validations = 0
        if validate:
            check_program(self.program)
            self.validations = 1
        #: The program as given (pre-optimization); ``self.program`` is what
        #: the compiled artifacts are actually built from.
        self.source_program = self.program
        if slice_targets is not None:
            normalised = normalise_slice_targets(tuple(slice_targets))
            if normalised is None:
                raise ValueError(
                    "slice_targets must be string target specs "
                    "('error' or 'procedure:label'), got "
                    f"{slice_targets!r}"
                )
            slice_targets = normalised
        self.slice_targets: Optional[Tuple[str, ...]] = slice_targets
        self.optimize_level = int(optimize)
        self.optimize_report: Optional[PassReport] = None
        if self.optimize_level:
            try:
                self.program, self.optimize_report = optimize_program(
                    self.program,
                    targets=self.slice_targets,
                    level=self.optimize_level,
                )
            except Exception as exc:  # degrade, never lose the query
                self.program = self.source_program
                self.optimize_report = PassReport(level=self.optimize_level)
                self.optimize_report.failed = repr(exc)
        self.cfg = build_cfg(self.program)
        self.encoder = SequentialEncoder(self.cfg)
        self._states: Dict[str, _AlgorithmState] = {}
        # Snapshot views this session attached (from_snapshot); detached —
        # never unlinked — on close.
        self._attached_views: List[bdd_snapshot.SnapshotView] = []
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every compiled artifact of every algorithm (idempotent).

        After a close (plus a sweep), each algorithm's manager is back at
        its empty baseline: zero external references, zero live nodes.
        """
        if self._closed:
            return
        for state in self._states.values():
            state.close()
        self._states.clear()
        for view in self._attached_views:
            view.close()
        self._attached_views.clear()
        self._closed = True

    def _state(self, algorithm: Optional[str]) -> _AlgorithmState:
        if self._closed:
            raise RuntimeError("the analysis session is closed")
        name = algorithm or self.default_algorithm
        if name not in SEQUENTIAL_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {name!r}; choose one of {sorted(SEQUENTIAL_ALGORITHMS)}"
            )
        state = self._states.get(name)
        if state is None:
            state = _AlgorithmState(self, name)
            self._states[name] = state
        return state

    # -- queries ---------------------------------------------------------
    def resolve(self, target: TargetSpec) -> List[Tuple[int, int]]:
        """Resolve a friendly target spec against this session's CFG."""
        self._guard_target(target)
        return resolve_target_locations(self.cfg, target)

    def _guard_target(self, target: TargetSpec) -> None:
        """Reject queries the optimized program cannot soundly answer.

        Numeric ``(module, pc)`` specs name locations of the *raw*
        program's numbering; once a structural pass renumbered pcs they are
        meaningless, so only string specs (resolved against the optimized
        CFG) are accepted.  A sliced program additionally only preserves
        reachability of the targets it was sliced for.
        """
        report = self.optimize_report
        if report is None or report.failed is not None:
            return
        specs = normalise_slice_targets(target)
        if specs is None:
            if not report.pc_stable:
                raise ValueError(
                    "numeric (module, pc) targets are not valid against a "
                    f"structurally optimized program (level {report.level}, "
                    f"{report.structural_changes} structural changes); use "
                    "string specs ('error' or 'procedure:label'), or open "
                    "the session with optimize<=1"
                )
            return
        if report.sliced_for is not None and not set(specs) <= set(report.sliced_for):
            raise ValueError(
                f"this session was sliced for targets {sorted(report.sliced_for)}; "
                f"it cannot soundly answer {sorted(specs)}"
            )

    @staticmethod
    def _signature(locations: Sequence[Tuple[int, int]]) -> TargetSignature:
        return tuple(sorted(set((int(m), int(p)) for m, p in locations)))

    def solve(self, algorithm: Optional[str] = None) -> SolveInfo:
        """Compute and retain the target-independent summary fixed point.

        Runs the algorithm's equation system to its full fixed point (no
        early stop — there is no target yet) and pins the resulting
        interpretations; subsequent :meth:`check` calls become query
        post-passes.  Idempotent: a second solve returns the retained
        result.  For the ``summary`` algorithm this is the once-per-program
        solve of the paper's baseline; monotone algorithms warm-start from
        a retained early-stopped iterate when one exists.
        """
        state = self._state(algorithm)
        with self._governed(state):
            return self._solve(state)

    def _solve(self, state: _AlgorithmState) -> SolveInfo:
        if state.solved is not None:
            retained = state.solved
            return SolveInfo(
                algorithm=state.algorithm,
                iterations=retained.iterations,
                equation_evaluations=retained.equation_evaluations,
                elapsed_seconds=retained.elapsed_seconds,
                reused=True,
            )
        if not state.target_free:
            raise ValueError(
                f"algorithm {state.algorithm!r} bakes Target into its equations; "
                "it has no target-independent summary to solve for"
            )
        seed = None
        base_iterations = 0
        base_evaluations = 0
        if state.partial is not None and state.algorithm in WARM_START_ALGORITHMS:
            seed = state.partial.interps
            base_iterations = state.partial.iterations
            base_evaluations = state.partial.equation_evaluations
        evaluation = self._evaluate(state, stop=None, seed=seed)
        state.solve_count += 1
        solved = state.retain_interps(
            evaluation,
            iterations=base_iterations + evaluation.iterations,
            equation_evaluations=base_evaluations + evaluation.equation_evaluations,
            elapsed_seconds=evaluation.elapsed_seconds,
            signature=None,
        )
        state.drop_retained(state.partial)
        state.partial = None
        state.solved = solved
        return SolveInfo(
            algorithm=state.algorithm,
            iterations=solved.iterations,
            equation_evaluations=solved.equation_evaluations,
            elapsed_seconds=solved.elapsed_seconds,
            warm_started=seed is not None,
        )

    def check(
        self,
        target: TargetSpec,
        algorithm: Optional[str] = None,
        early_stop: bool = True,
    ):
        """Answer one reachability query against the compiled artifacts.

        With a retained summary (after :meth:`solve`, or after a query that
        ran to the fixed point anyway) this is a pure post-pass: fetch the
        Target BDD, evaluate the compiled query plan — no fixed-point
        iteration at all.  Otherwise the classic per-target evaluation runs,
        warm-started for monotone algorithms when a partial iterate is
        retained.  Returns a
        :class:`~repro.algorithms.ReachabilityResult` whose ``details``
        carry the session reuse flags (``reused_solve``, ``warm_start``).
        """
        started = time.perf_counter()
        state = self._state(algorithm)
        faults.on_query(state.algorithm)
        with self._governed(state):
            return self._check(state, target, early_stop, started)

    def _check(
        self,
        state: _AlgorithmState,
        target: TargetSpec,
        early_stop: bool,
        started: float,
    ) -> ReachabilityResult:
        locations = self.resolve(target)
        signature = self._signature(locations)
        state.query_count += 1
        encode_start = time.perf_counter()
        cached_target = signature in state.target_cache
        target_node = state.target_edge(self.encoder, signature)
        encode_seconds = 0.0 if cached_target else time.perf_counter() - encode_start
        if state.query_count == 1:
            # The state's first query also paid for the base templates and
            # the compiled query plan; account them here so a fresh-session
            # wrapper reports the same encode cost the monolithic engine did.
            encode_seconds += state.encode_seconds
        inputs = dict(state.base_interps)
        inputs["Target"] = target_node

        if state.solved is not None:
            state.reused_query_count += 1
            eval_start = time.perf_counter()
            merged = dict(inputs)
            merged.update(state.solved.interps)
            reachable = state.query_holds(merged)
            # Post-pass safe point: the evaluators' gc_step never runs on
            # this path, and a long-lived session answering many targets
            # would otherwise grow its node table monotonically.  Every
            # edge the session still needs is retained (an external GC
            # root), so no extra roots are required.
            state.backend.gc_step(())
            elapsed = time.perf_counter() - eval_start
            summary_node = state.solved.interps[state.spec.target_relation]
            if state.solved.summary_nodes is None:
                state.solved.summary_nodes = state.backend.manager.node_count(summary_node)
                state.solved.summary_states = self._count_states(state, summary_node)
            return self._result(
                state,
                reachable=reachable,
                iterations=state.solved.iterations,
                equation_evaluations=state.solved.equation_evaluations,
                summary_node=summary_node,
                summary_nodes=state.solved.summary_nodes,
                summary_states=state.solved.summary_states,
                elapsed_seconds=elapsed,
                encode_seconds=encode_seconds,
                total_seconds=time.perf_counter() - started,
                stopped_early=False,
                locations=locations,
                reused_solve=True,
                warm_start=False,
            )

        # Fresh (or warm-started) per-target evaluation over the compiled
        # plans and template BDDs.
        stop = None
        if early_stop:
            def stop(interps: Mapping[str, int], _inputs=inputs, _state=state) -> bool:
                merged = dict(_inputs)
                merged.update(interps)
                return _state.query_holds(merged)

        seed = None
        base_iterations = 0
        base_evaluations = 0
        if (
            state.partial is not None
            and state.algorithm in WARM_START_ALGORITHMS
            and state.target_free
        ):
            seed = state.partial.interps
            base_iterations = state.partial.iterations
            base_evaluations = state.partial.equation_evaluations
        evaluation = self._evaluate(state, stop=stop, seed=seed, inputs=inputs)
        merged = dict(inputs)
        merged.update(evaluation.interpretations)
        reachable = state.query_holds(merged)
        summary_node = evaluation.interpretations[state.spec.target_relation]
        iterations = base_iterations + evaluation.iterations
        evaluations = base_evaluations + evaluation.equation_evaluations

        retainable = state.target_free and (
            not evaluation.stopped_early or state.algorithm in WARM_START_ALGORITHMS
        )
        if retainable:
            retained = state.retain_interps(
                evaluation,
                iterations=iterations,
                equation_evaluations=evaluations,
                elapsed_seconds=evaluation.elapsed_seconds,
                signature=signature,
            )
            # Retain-new before drop-old: the new iterate may share edges
            # with the superseded one.
            state.drop_retained(state.partial)
            state.partial = None
            if not evaluation.stopped_early:
                # The run reached the full fixed point: promote it to the
                # retained summary — later checks become post-passes.
                state.solve_count += 1
                state.solved = retained
            else:
                # An intermediate monotone iterate: keep it as the seed the
                # next query resumes from.
                state.partial = retained

        return self._result(
            state,
            reachable=reachable,
            iterations=iterations,
            equation_evaluations=evaluations,
            summary_node=summary_node,
            elapsed_seconds=evaluation.elapsed_seconds,
            encode_seconds=encode_seconds,
            total_seconds=time.perf_counter() - started,
            stopped_early=evaluation.stopped_early,
            locations=locations,
            reused_solve=False,
            warm_start=seed is not None,
        )

    def check_all(
        self,
        targets: Sequence[TargetSpec],
        algorithm: Optional[str] = None,
        early_stop: bool = True,
        solve_first: bool = True,
    ) -> List:
        """Answer a batch of queries, amortising one solve across them.

        With ``solve_first`` (the default) and more than one target, the
        summary fixed point is solved once up front and every query is a
        post-pass — the compile-once/query-many fast path.  Verdicts are
        identical to fresh per-target runs; iteration counts equal those of
        a fresh full (``early_stop=False``) evaluation, which is
        target-independent for target-free systems.
        """
        targets = list(targets)
        state = self._state(algorithm)
        if solve_first and state.target_free and len(targets) > 1 and state.solved is None:
            self.solve(state.algorithm)
        return [
            self.check(target, algorithm=state.algorithm, early_stop=early_stop)
            for target in targets
        ]

    def explain(self, target: TargetSpec, algorithm: Optional[str] = None):
        """Extract a replay-validated counterexample trace for ``target``.

        Returns a :class:`~repro.witness.WitnessTrace` when the target is
        reachable, ``None`` when it is not — extraction never changes a
        verdict.  The trace is walked out of the retained summary
        interpretations (solving first if needed) with the deterministic
        ``pick_cube`` kernel primitive and then replayed through the
        explicit semantics of :mod:`repro.baselines.semantics`; a trace
        that fails the replay raises
        :class:`~repro.witness.WitnessValidationError` instead of being
        reported.  Resource limits govern the extraction like any query.
        """
        state = self._state(algorithm)
        with self._governed(state):
            return self._explain(state, target)

    def _explain(self, state: _AlgorithmState, target: TargetSpec):
        from ..witness import WitnessExtractor, validate_trace

        locations = self.resolve(target)
        signature = self._signature(locations)
        if state.solved is None:
            self._solve(state)
        assert state.solved is not None
        target_node = state.target_edge(self.encoder, signature)
        merged = dict(state.base_interps)
        merged["Target"] = target_node
        merged.update(state.solved.interps)
        if not state.query_holds(merged):
            return None
        extractor = state.witness_extractor
        if extractor is None:
            extractor = WitnessExtractor(state.backend, state.base, self.cfg)
            state.witness_extractor = extractor
        trace = extractor.extract(
            state.algorithm, state.solved.interps, target_node, locations
        )
        if trace is None:
            return None
        return validate_trace(self.cfg, trace, locations)

    # -- snapshots ---------------------------------------------------------
    def freeze(self, algorithm: Optional[str] = None) -> SessionSnapshot:
        """Publish the retained solved fixed point as a shared-memory segment.

        Requires a prior :meth:`solve` (the snapshot is the *solved* table)
        and the array node store (the segment is a copy of its flat
        vectors).  The table is GC-swept first so the frozen image is
        compact — retained interpretations, templates and cached targets
        are external roots and survive — then copied out with the frozen
        unique table that makes overlay allocation canonical.

        The freezing session keeps working normally afterwards (the segment
        is an immutable copy).  The caller owns the returned handle's
        segment until it hands the handle to a driver/daemon and calls
        :meth:`SessionSnapshot.disown`.
        """
        state = self._state(algorithm)
        if state.solved is None:
            raise RuntimeError("freeze() requires a solved session; call solve() first")
        if self.optimize_report is not None and self.optimize_report.sliced_for:
            # The snapshot handle carries no slice pedigree; an attaching
            # session would answer arbitrary targets against a program that
            # only preserves the sliced ones.
            raise RuntimeError("freeze() is not supported for sliced sessions")
        manager = state.backend.manager
        if not isinstance(manager, ArrayBddManager):
            raise BddError(
                f"freeze() needs the array node store (session uses {manager.STORE!r})"
            )
        manager.collect_garbage()
        name = bdd_snapshot.freeze(manager)
        program = self.program if _picklable(self.program) else None
        if program is None:
            raise RuntimeError("freeze() requires a picklable program")
        return SessionSnapshot(
            segment=name,
            program=program,
            algorithm=state.algorithm,
            interps=dict(state.solved.interps),
            iterations=state.solved.iterations,
            equation_evaluations=state.solved.equation_evaluations,
            elapsed_seconds=state.solved.elapsed_seconds,
            summary_nodes=state.solved.summary_nodes,
            summary_states=state.solved.summary_states,
        )

    @classmethod
    def from_snapshot(
        cls,
        snapshot: SessionSnapshot,
        *,
        limits: Optional[ResourceLimits] = None,
        max_iterations: int = 100_000,
    ) -> "AnalysisSession":
        """Attach to a frozen solved table and serve query post-passes.

        The segment is mapped copy-free: the returned session's algorithm
        state evaluates in a :class:`~repro.bdd.snapshot
        .SnapshotOverlayManager` whose base prefix *is* the shared image,
        and ``state.solved`` is pre-filled with the frozen interpretation
        edges — every :meth:`check`/:meth:`check_all` is a post-pass, no
        fixed-point iteration runs, and re-encoded templates/targets resolve
        to frozen nodes through the overlay's unique probe.  Validation is
        skipped (the freezer validated).  Node budgets govern only overlay
        allocations — the frozen base is not charged to this session.

        The session ``close()`` detaches the view; it never unlinks the
        segment (that is the handle owner's job).
        """
        view = bdd_snapshot.SnapshotView(snapshot.segment)
        try:
            overlay = bdd_snapshot.SnapshotOverlayManager(view)
            session = cls(
                snapshot.program,
                default_algorithm=snapshot.algorithm,
                validate=False,
                max_iterations=max_iterations,
                limits=limits,
            )
            state = _AlgorithmState(session, snapshot.algorithm, manager=overlay)
            for edge in snapshot.interps.values():
                state.backend.retain(edge)
            state.solved = _Retained(
                interps=dict(snapshot.interps),
                iterations=snapshot.iterations,
                equation_evaluations=snapshot.equation_evaluations,
                elapsed_seconds=snapshot.elapsed_seconds,
                summary_nodes=snapshot.summary_nodes,
                summary_states=snapshot.summary_states,
            )
            state.solve_count += 1
            session._states[snapshot.algorithm] = state
            session._attached_views.append(view)
            return session
        except BaseException:
            view.close()
            raise

    # -- bookkeeping ------------------------------------------------------
    def live_nodes(self) -> int:
        """Live BDD nodes across every compiled algorithm's manager.

        The memory footprint of the session, in the same unit the kernel's
        ``stats_snapshot()`` reports: a service pooling many sessions evicts
        by this number (see :mod:`repro.service.pool`).
        """
        return sum(len(state.backend.manager) for state in self._states.values())

    def stats(self) -> Dict[str, object]:
        """Session-level reuse counters, per compiled algorithm."""
        return {
            "validations": self.validations,
            "optimize": (
                self.optimize_report.to_dict()
                if self.optimize_report is not None
                else None
            ),
            "algorithms": {
                name: {
                    "solves": state.solve_count,
                    "queries": state.query_count,
                    "reused_queries": state.reused_query_count,
                    "cached_targets": len(state.target_cache),
                    "retained_edges": state.backend.retained_count(),
                }
                for name, state in self._states.items()
            },
        }

    # -- resource governance ----------------------------------------------
    def set_limits(self, limits: Optional[ResourceLimits]) -> None:
        """Replace the session's resource envelope (``None`` removes it).

        Applies immediately to every compiled algorithm state: node budgets
        are (re)installed on their managers, and the next query is governed
        by the new deadline/iteration budget.  Lets a caller recover a
        session whose envelope proved too tight without recompiling.
        """
        self.limits = limits
        if limits is not None and limits.max_iterations is not None:
            self.max_iterations = limits.max_iterations
        else:
            self.max_iterations = self._default_max_iterations
        for state in self._states.values():
            state.backend.manager.set_node_budget(
                limits.node_budget if limits is not None else None
            )

    @contextmanager
    def _governed(self, state: _AlgorithmState) -> Iterator[None]:
        """Arm the per-query envelope on the state's manager for one query.

        On :class:`~repro.errors.ResourceExhausted` the deadline is
        disarmed and the failed run's garbage is swept (retained
        interpretations and compiled skeletons are external roots and
        survive), so the session stays usable and ``close()`` still returns
        the manager to its baseline.
        """
        mgr = state.backend.manager
        limits = self.limits
        armed = limits is not None and limits.deadline_seconds is not None
        if armed:
            mgr.set_deadline(limits.deadline_seconds)
        try:
            yield
        except ResourceExhausted:
            mgr.clear_deadline()
            mgr.collect_garbage()
            raise
        finally:
            if armed:
                mgr.clear_deadline()

    # -- internals --------------------------------------------------------
    def _evaluate(
        self,
        state: _AlgorithmState,
        stop,
        seed: Optional[Mapping[str, int]] = None,
        inputs: Optional[Dict[str, int]] = None,
    ) -> EvaluationResult:
        if inputs is None:
            # A solve has no target: Target is an input of the system but no
            # equation of a target-free system reads it, so FALSE suffices.
            inputs = dict(state.base_interps)
            inputs["Target"] = state.backend.manager.FALSE
        evaluate = (
            evaluate_nested if state.spec.evaluation == "nested" else evaluate_simultaneous
        )
        return evaluate(
            state.spec.system,
            state.spec.target_relation,
            state.backend,
            inputs,
            max_iterations=self.max_iterations,
            stop=stop,
            seed=seed,
        )

    @staticmethod
    def _count_states(state: _AlgorithmState, summary_node: int) -> Optional[int]:
        """Tuple count of the target relation via signed-edge count_sat."""
        try:
            decl = state.spec.system.equation(state.spec.target_relation).decl
            return state.backend.count(summary_node, decl)
        except (BddError, KeyError):
            return None

    def _result(
        self,
        state: _AlgorithmState,
        *,
        reachable: bool,
        iterations: int,
        equation_evaluations: int,
        summary_node: int,
        elapsed_seconds: float,
        encode_seconds: float,
        total_seconds: float,
        stopped_early: bool,
        locations: Sequence[Tuple[int, int]],
        reused_solve: bool,
        warm_start: bool,
        summary_nodes: Optional[int] = None,
        summary_states: Optional[int] = None,
    ) -> ReachabilityResult:
        manager = state.backend.manager
        if summary_nodes is None:
            summary_nodes = manager.node_count(summary_node)
            summary_states = self._count_states(state, summary_node)
        stats = state.backend.stats_snapshot()
        if self.optimize_report is not None:
            stats["optimize"] = self.optimize_report.to_dict()
        return ReachabilityResult(
            reachable=reachable,
            algorithm=f"getafix-{state.spec.name}",
            iterations=iterations,
            equation_evaluations=equation_evaluations,
            summary_nodes=summary_nodes,
            summary_states=summary_states,
            elapsed_seconds=elapsed_seconds,
            encode_seconds=encode_seconds,
            total_seconds=total_seconds,
            stopped_early=stopped_early,
            details={
                "bdd_variables": manager.num_vars,
                "bdd_live_nodes": len(manager),
                "target_locations": list(locations),
                "evaluation_mode": state.spec.evaluation,
                "reused_solve": reused_solve,
                "warm_start": warm_start,
                "target_signature": list(self._signature(locations)),
            },
            stats=stats,
        )
