"""Driver-side pooling: worker supervision, pool accounting, circuit breaking.

Three cooperating pieces, all owned by the daemon's event loop:

* :class:`ProcessWorkerPool` — a fixed-size set of long-lived worker
  processes (see :mod:`repro.service.worker`), each connected by a pipe and
  drained by one reader task.  Routing is by **program-hash affinity**
  (``worker = hash % size``), so repeated queries for one program land on
  the worker already holding its warm session.  A dead worker fails over:
  its in-flight jobs are retried once on a rebuilt worker after a bounded
  exponential backoff, and jobs that die twice come back as structured
  ``crashed`` outcomes — never dropped, never an exception.
* :class:`InlineWorkerPool` — the measurable single-process fallback
  (``workers=0``): the identical :func:`~repro.service.worker.execute_job`
  path on a driver-local cache behind a one-thread executor, so comparing
  pooled vs in-process service numbers compares configurations, not code.
* :class:`SessionPoolIndex` + :class:`CircuitBreaker` — the daemon's
  bookkeeping: an LRU index of pooled sessions priced in live BDD nodes
  (the kernel's own accounting) that yields eviction decisions under a
  memory budget, and a per-program-hash breaker that quarantines programs
  which repeatedly crash or exhaust workers, riding the shard conviction
  taxonomy (``crashed``/``timeout``/``resource`` strike; user errors
  neither strike nor heal).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from .protocol import QueryJob, QueryOutcome, error_payload
from .worker import SessionCache, execute_job, worker_main

__all__ = [
    "CircuitBreaker",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "SessionPoolIndex",
]


# ---------------------------------------------------------------------------
# Pool accounting: LRU session index priced in live BDD nodes.
# ---------------------------------------------------------------------------

@dataclass
class _PoolEntry:
    worker_index: int
    live_nodes: int = 0
    queries: int = 0
    gc_collections_seen: int = 0


class SessionPoolIndex:
    """The daemon's ledger of pooled sessions (the workers hold the objects).

    Keys are program content hashes; values record which worker owns the
    session, its last reported live-node count and cumulative GC activity.
    :meth:`evictions` implements the pool policy: when the summed live
    nodes exceed ``memory_budget_nodes``, least-recently-used sessions are
    evicted until the pool fits — skipping hashes with queries in flight
    and always sparing the most recently touched session (evicting the
    session you are actively serving would defeat the pool entirely).
    """

    def __init__(self, memory_budget_nodes: Optional[int] = None) -> None:
        if memory_budget_nodes is not None and memory_budget_nodes <= 0:
            raise ValueError("memory_budget_nodes must be positive")
        self.memory_budget_nodes = memory_budget_nodes
        self._entries: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        self.peak_live_nodes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, program_hash: str) -> bool:
        return program_hash in self._entries

    def touch(
        self,
        program_hash: str,
        worker_index: int,
        live_nodes: int,
        gc_collections: int = 0,
    ) -> int:
        """Record a served query; returns the session's GC-collection delta."""
        entry = self._entries.get(program_hash)
        if entry is None:
            entry = _PoolEntry(worker_index=worker_index)
            self._entries[program_hash] = entry
        entry.worker_index = worker_index
        entry.live_nodes = live_nodes
        entry.queries += 1
        delta = max(0, gc_collections - entry.gc_collections_seen)
        entry.gc_collections_seen = max(entry.gc_collections_seen, gc_collections)
        self._entries.move_to_end(program_hash)
        self.peak_live_nodes = max(self.peak_live_nodes, self.total_live_nodes())
        return delta

    def drop(self, program_hash: str) -> None:
        self._entries.pop(program_hash, None)

    def total_live_nodes(self) -> int:
        return sum(entry.live_nodes for entry in self._entries.values())

    def worker_of(self, program_hash: str) -> Optional[int]:
        entry = self._entries.get(program_hash)
        return entry.worker_index if entry is not None else None

    def evictions(self, busy: Set[str]) -> List[Tuple[str, int]]:
        """LRU victims to evict so the pool fits its budget (may be empty)."""
        if self.memory_budget_nodes is None:
            return []
        victims: List[Tuple[str, int]] = []
        total = self.total_live_nodes()
        if total <= self.memory_budget_nodes:
            return []
        # Oldest first; the last entry is the most recently touched and is
        # never evicted here.
        candidates = list(self._entries.items())[:-1]
        for program_hash, entry in candidates:
            if total <= self.memory_budget_nodes:
                break
            if program_hash in busy:
                continue
            victims.append((program_hash, entry.worker_index))
            total -= entry.live_nodes
            del self._entries[program_hash]
        return victims

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly pool state for health/metrics responses."""
        return {
            "sessions": len(self._entries),
            "live_nodes": self.total_live_nodes(),
            "peak_live_nodes": self.peak_live_nodes,
            "memory_budget_nodes": self.memory_budget_nodes,
            "entries": [
                {
                    "program": program_hash[:12],
                    "worker": entry.worker_index,
                    "live_nodes": entry.live_nodes,
                    "queries": entry.queries,
                }
                for program_hash, entry in self._entries.items()
            ],
        }


# ---------------------------------------------------------------------------
# Circuit breaker: per-program-hash quarantine.
# ---------------------------------------------------------------------------

class CircuitBreaker:
    """Quarantine program hashes that repeatedly crash or exhaust workers.

    ``threshold`` consecutive striking outcomes (``crashed``, ``timeout``,
    ``resource`` — the shard conviction taxonomy) open the circuit for
    ``cooldown_seconds``: requests for that hash are answered immediately
    with a typed ``circuit-open`` error instead of burning a worker on a
    known-bad program.  After the cooldown one probe request is let through
    (half-open); success closes the circuit, another strike re-opens it.
    User errors (status ``error``) neither strike nor heal — a parse error
    says nothing about worker safety.
    """

    STRIKE_STATUSES = frozenset({"crashed", "timeout", "resource"})

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._strikes: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        self.trips = 0

    def allow(self, program_hash: str) -> Tuple[bool, float]:
        """(admit?, seconds until the next probe would be admitted)."""
        deadline = self._open_until.get(program_hash)
        if deadline is None:
            return True, 0.0
        now = self._clock()
        if now >= deadline:
            # Half-open: admit one probe, stay armed for everyone else until
            # the probe's outcome is recorded.
            self._open_until[program_hash] = now + self.cooldown_seconds
            return True, 0.0
        return False, deadline - now

    def record(self, program_hash: str, status: str) -> bool:
        """Record an outcome; True when this record opened the circuit."""
        if status in ("ok", "retried"):
            self._strikes.pop(program_hash, None)
            self._open_until.pop(program_hash, None)
            return False
        if status not in self.STRIKE_STATUSES:
            return False
        strikes = self._strikes.get(program_hash, 0) + 1
        self._strikes[program_hash] = strikes
        if strikes < self.threshold:
            return False
        newly_open = program_hash not in self._open_until
        self._open_until[program_hash] = self._clock() + self.cooldown_seconds
        if newly_open:
            self.trips += 1
        return newly_open

    def strikes(self, program_hash: str) -> int:
        return self._strikes.get(program_hash, 0)

    def open_hashes(self) -> List[str]:
        now = self._clock()
        return [h for h, until in self._open_until.items() if until > now]


# ---------------------------------------------------------------------------
# Worker pools.
# ---------------------------------------------------------------------------

@dataclass
class _Pending:
    job: QueryJob
    future: "asyncio.Future[QueryOutcome]"
    attempts: int = 1


class _WorkerHandle:
    def __init__(self, index: int, process, conn, restarts: int) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.restarts = restarts
        self.inflight: Dict[str, _Pending] = {}
        self.dead = False
        self.closing = False
        self.reader: Optional[asyncio.Task] = None

    @property
    def pid(self) -> int:
        return self.process.pid or 0


class ProcessWorkerPool:
    """Long-lived worker processes with affinity routing and supervision.

    ``submit`` never raises and never loses a job: a worker death re-runs
    the job once on a rebuilt worker (bounded exponential backoff between
    rebuilds), and a second death returns a structured ``crashed`` outcome.
    ``on_evicted(program_hash, freed_nodes)`` fires when a worker confirms
    an eviction command.
    """

    def __init__(
        self,
        size: int,
        *,
        fault_plan=None,
        start_method: Optional[str] = None,
        max_attempts: int = 2,
        retry_backoff: float = 0.05,
        backoff_cap: float = 2.0,
        on_evicted: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if size < 1:
            raise ValueError("a process pool needs at least one worker")
        self.size = size
        self._fault_plan = fault_plan
        self._start_method = start_method
        self._max_attempts = max_attempts
        self._retry_backoff = retry_backoff
        self._backoff_cap = backoff_cap
        self.on_evicted = on_evicted
        self._handles: List[Optional[_WorkerHandle]] = [None] * size
        self._ready: List[asyncio.Event] = []
        self._stopping = False
        self.restarts = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._ready = [asyncio.Event() for _ in range(self.size)]
        for index in range(self.size):
            self._install(index, restarts=0)

    def _spawn(self, index: int, restarts: int) -> _WorkerHandle:
        import multiprocessing

        context = (
            multiprocessing.get_context(self._start_method)
            if self._start_method
            else multiprocessing
        )
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=worker_main,
            args=(child_conn, self._fault_plan),
            daemon=True,
            name=f"repro-service-worker-{index}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn, restarts)

    def _install(self, index: int, restarts: int) -> _WorkerHandle:
        handle = self._spawn(index, restarts)
        self._handles[index] = handle
        handle.reader = asyncio.get_running_loop().create_task(self._read_loop(handle))
        self._ready[index].set()
        return handle

    async def stop(self) -> None:
        """Stop every worker: polite stop message, then join, then terminate."""
        self._stopping = True
        loop = asyncio.get_running_loop()
        handles = [handle for handle in self._handles if handle is not None]
        for handle in handles:
            handle.closing = True
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            await loop.run_in_executor(None, handle.process.join, 2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                await loop.run_in_executor(None, handle.process.join, 1.0)
        # Retire the readers before closing their connections: the reader
        # owns the fd's readiness registration, and closing an fd that is
        # still registered (or mid-callback) is how reader leaks start.
        readers = [handle.reader for handle in handles if handle.reader is not None]
        for reader in readers:
            reader.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        for handle in handles:
            try:
                handle.conn.close()
            except OSError:
                pass
            for pending in handle.inflight.values():
                if not pending.future.done():
                    pending.future.set_result(
                        QueryOutcome(
                            status="crashed",
                            error=error_payload(
                                "ServiceStopped",
                                "the service stopped before this query finished",
                            ),
                        )
                    )
            handle.inflight.clear()

    # -- routing ---------------------------------------------------------
    def worker_index(self, program_hash: str) -> int:
        return int(program_hash[:8], 16) % self.size

    def alive_count(self) -> int:
        return sum(
            1
            for handle in self._handles
            if handle is not None and not handle.dead and handle.process.is_alive()
        )

    def worker_states(self) -> List[Dict[str, object]]:
        states = []
        for index, handle in enumerate(self._handles):
            states.append(
                {
                    "index": index,
                    "pid": handle.pid if handle is not None else None,
                    "alive": bool(
                        handle is not None
                        and not handle.dead
                        and handle.process.is_alive()
                    ),
                    "restarts": handle.restarts if handle is not None else 0,
                    "inflight": len(handle.inflight) if handle is not None else 0,
                }
            )
        return states

    async def _handle_for(self, index: int) -> _WorkerHandle:
        while True:
            handle = self._handles[index]
            if handle is not None and not handle.dead:
                return handle
            await self._ready[index].wait()

    # -- work ------------------------------------------------------------
    async def submit(self, job: QueryJob) -> QueryOutcome:
        index = self.worker_index(job.program_hash)
        handle = await self._handle_for(index)
        future: "asyncio.Future[QueryOutcome]" = asyncio.get_running_loop().create_future()
        pending = _Pending(job=job, future=future)
        handle.inflight[job.id] = pending
        try:
            handle.conn.send(("query", job))
        except (BrokenPipeError, OSError):
            # The worker died under us; the reader's death path owns this
            # pending entry now (retry or structured failure).
            pass
        return await future

    async def evict(self, program_hash: str, worker_index: Optional[int] = None) -> None:
        index = worker_index if worker_index is not None else self.worker_index(program_hash)
        handle = self._handles[index]
        if handle is None or handle.dead:
            # A dead worker already lost its sessions; nothing to evict.
            if self.on_evicted is not None:
                self.on_evicted(program_hash, 0)
            return
        try:
            handle.conn.send(("evict", program_hash))
        except (BrokenPipeError, OSError):
            if self.on_evicted is not None:
                self.on_evicted(program_hash, 0)

    # -- supervision -----------------------------------------------------
    async def _read_loop(self, handle: _WorkerHandle) -> None:
        # Readiness-driven, not thread-driven: a thread blocked in
        # ``conn.recv`` cannot be cancelled and would wedge the default
        # executor's shutdown if the peer fd never delivers EOF (fork
        # helpers inheriting the child end keep the pipe alive).  With
        # ``add_reader`` the loop only touches the pipe when it is
        # readable, and tearing the reader down is an ordinary
        # task-cancel plus fd-unregister.
        loop = asyncio.get_running_loop()
        fd = handle.conn.fileno()
        readable = asyncio.Event()
        loop.add_reader(fd, readable.set)
        registered = True

        def _unregister() -> None:
            nonlocal registered
            if registered:
                registered = False
                try:
                    loop.remove_reader(fd)
                except (OSError, ValueError):
                    pass

        try:
            while True:
                await readable.wait()
                readable.clear()
                while True:
                    try:
                        if not handle.conn.poll(0):
                            break
                        message = handle.conn.recv()
                    except (EOFError, OSError):
                        _unregister()
                        if self._stopping or handle.closing:
                            return
                        await self._on_worker_death(handle)
                        return
                    self._dispatch(handle, message)
        finally:
            _unregister()

    def _dispatch(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "result":
            pending = handle.inflight.pop(message[1], None)
            if pending is not None and not pending.future.done():
                outcome: QueryOutcome = message[2]
                if pending.attempts > 1:
                    outcome.retries = pending.attempts - 1
                    if outcome.status == "ok":
                        outcome.status = "retried"
                pending.future.set_result(outcome)
        elif kind == "evicted":
            if self.on_evicted is not None:
                self.on_evicted(message[1], message[2])

    async def _on_worker_death(self, handle: _WorkerHandle) -> None:
        """Fail over a dead worker: rebuild it, retry its in-flight jobs once."""
        handle.dead = True
        index = handle.index
        self._ready[index].clear()
        self.restarts += 1
        pending_jobs = list(handle.inflight.values())
        handle.inflight.clear()
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(0.5)
        retryable: List[_Pending] = []
        for pending in pending_jobs:
            if pending.future.done():
                continue
            if pending.attempts >= self._max_attempts:
                pending.future.set_result(
                    QueryOutcome(
                        status="crashed",
                        error=error_payload(
                            "WorkerCrashed",
                            f"worker {index} died running query "
                            f"{pending.job.name!r} ({pending.attempts} attempt(s))",
                            attempts=pending.attempts,
                        ),
                        retries=pending.attempts - 1,
                    )
                )
            else:
                retryable.append(pending)
        restarts = handle.restarts + 1
        backoff = min(self._retry_backoff * (2 ** (restarts - 1)), self._backoff_cap)
        await asyncio.sleep(backoff)
        if self._stopping:
            for pending in retryable:
                if not pending.future.done():
                    pending.future.set_result(
                        QueryOutcome(
                            status="crashed",
                            error=error_payload(
                                "ServiceStopped",
                                "the service stopped before this query finished",
                            ),
                        )
                    )
            return
        new_handle = self._install(index, restarts)
        for pending in retryable:
            pending.attempts += 1
            new_handle.inflight[pending.job.id] = pending
            try:
                new_handle.conn.send(("query", pending.job))
            except (BrokenPipeError, OSError):
                pass  # the new reader's death path owns these now


class InlineWorkerPool:
    """Single-process fallback: the same job path, one executor thread.

    Sessions live in the driver process; injected worker kills are inert
    here by design (the fault plan is installed without the worker mark).
    Used when ``workers=0`` is requested or process pools are unavailable,
    and by tests that exercise daemon logic without multiprocessing.
    """

    size = 1

    def __init__(self, *, fault_plan=None, on_evicted=None) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._fault_plan = fault_plan
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-inline"
        )
        self._cache = SessionCache()
        self.on_evicted = on_evicted
        self.restarts = 0

    async def start(self) -> None:
        if self._fault_plan is not None:
            from ..testing import faults

            faults.install(self._fault_plan)

    async def stop(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._cache.close)
        self._executor.shutdown(wait=True)
        if self._fault_plan is not None:
            from ..testing import faults

            faults.clear()

    def worker_index(self, program_hash: str) -> int:
        return 0

    def alive_count(self) -> int:
        return 1

    def worker_states(self) -> List[Dict[str, object]]:
        import os

        return [
            {
                "index": 0,
                "pid": os.getpid(),
                "alive": True,
                "restarts": 0,
                "inflight": 0,
            }
        ]

    async def submit(self, job: QueryJob) -> QueryOutcome:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, execute_job, self._cache, job)

    async def evict(self, program_hash: str, worker_index: Optional[int] = None) -> None:
        loop = asyncio.get_running_loop()
        freed = await loop.run_in_executor(self._executor, self._cache.evict, program_hash)
        if self.on_evicted is not None:
            self.on_evicted(program_hash, freed)
