"""Wire protocol and job records of the analysis daemon.

The daemon speaks JSON Lines: one request object per line in, one response
object per line out (see :mod:`repro.service.daemon` for the service loop).
This module owns the boundary between that JSON world and the typed internal
one:

* :func:`parse_request` turns a decoded request mapping into a
  :class:`QueryJob` — the picklable unit of work shipped to worker processes
  — front-loading every user error as a :class:`ProtocolError` with a typed
  JSON payload (the daemon never answers a malformed request with a
  traceback).
* :class:`QueryOutcome` is the picklable worker-to-driver result record.  Its
  ``status`` field extends the shard taxonomy of
  :class:`repro.parallel.shards.ShardResult` (``ok/retried/timeout/resource/
  crashed``) with the service-side outcomes ``error`` (user error),
  ``shed`` (load-shed rejection), ``circuit-open`` (quarantined program
  hash) and ``draining`` (shutdown in progress).
* :func:`content_hash` is the program identity the session pool, the
  request coalescer and the circuit breaker all key on: the SHA-256 of the
  program source text, so textually identical programs share a pooled
  session no matter which client sent them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..algorithms.engine import SEQUENTIAL_ALGORITHMS
from ..limits import ResourceLimits

__all__ = [
    "ProtocolError",
    "QueryJob",
    "QueryOutcome",
    "content_hash",
    "parse_request",
    "error_payload",
]

#: Statuses a response may carry.  The first five mirror the shard taxonomy
#: (see :class:`repro.parallel.shards.ShardResult`); the rest are produced by
#: the daemon itself, before a query ever reaches a worker.
RESPONSE_STATUSES = (
    "ok",
    "retried",
    "timeout",
    "resource",
    "crashed",
    "error",
    "shed",
    "circuit-open",
    "draining",
)


def content_hash(source: str) -> str:
    """The pool/coalescing/breaker key of a program: SHA-256 of its text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def error_payload(type_name: str, message: str, **extra: object) -> Dict[str, object]:
    """A typed JSON error record (same shape as ``ResourceExhausted.detail()``)."""
    payload: Dict[str, object] = {"type": type_name, "message": message}
    payload.update(extra)
    return payload


class ProtocolError(ValueError):
    """A request the daemon must reject, with its typed JSON payload."""

    def __init__(self, type_name: str, message: str, **extra: object) -> None:
        super().__init__(message)
        self.payload = error_payload(type_name, message, **extra)


@dataclass(frozen=True)
class QueryJob:
    """One admitted query, as plain picklable data (driver -> worker).

    ``id`` is the daemon-side correlation key (echoed in the response);
    ``name`` is the friendly label fault plans and load reports key on
    (mirrors :class:`repro.parallel.shards.BatchQuery.name`).
    ``program_hash`` is precomputed so workers and the driver agree on the
    session-pool key without re-hashing the source per hop.
    """

    id: str
    name: str
    program: str
    program_hash: str
    target: Union[str, Tuple[str, ...], Tuple[Tuple[int, int], ...]] = "error"
    algorithm: str = "ef-opt"
    concurrent: bool = False
    context_switches: int = 2
    early_stop: bool = True
    limits: Optional[ResourceLimits] = None
    #: Static pre-analysis level (0–2, :mod:`repro.analysis`) the pooled
    #: session compiles at.  Baked into ``program_hash`` (an ``:O<level>``
    #: suffix) so pool, coalescer, breaker and snapshot catalog never mix
    #: sessions built from differently-optimized programs.  Pooled sessions
    #: serve arbitrary targets, so they never slice.
    optimize: int = 0
    #: A :class:`repro.api.session.SessionSnapshot` the daemon attached from
    #: its catalog: the worker opens the session copy-free from the frozen
    #: solved table instead of re-solving (set by the daemon, never parsed
    #: from requests).
    snapshot: Optional[object] = None
    #: Ask the worker to freeze and return a snapshot after this query
    #: leaves the session solved (daemon-set; see ``DaemonConfig.snapshots``).
    publish_snapshot: bool = False
    #: Attach a replay-validated counterexample trace to a reachable verdict
    #: (the ``witness`` op / request field; sequential queries only).
    witness: bool = False

    def coalesce_key(self) -> Tuple[object, ...]:
        """Requests with equal keys are answered by one shared execution."""
        return (
            self.program_hash,
            self.algorithm,
            self.target,
            self.concurrent,
            self.context_switches,
            self.early_stop,
            self.limits,
            self.witness,
        )


@dataclass
class QueryOutcome:
    """What one executed job produced (worker -> driver, picklable).

    ``session_live_nodes`` is the serving session's live BDD node count
    *after* the query (the pool's eviction currency);
    ``gc_collections`` is the session-cumulative collection count (the
    driver accumulates deltas per program hash).  Both are 0 for concurrent
    queries, which run without a pooled session.
    """

    status: str = "ok"
    reachable: Optional[bool] = None
    algorithm: Optional[str] = None
    degraded_from: Optional[str] = None
    warm: bool = False
    iterations: int = 0
    elapsed_seconds: float = 0.0
    error: Optional[Dict[str, object]] = None
    session_live_nodes: int = 0
    gc_collections: int = 0
    retries: int = 0
    worker_pid: int = 0
    #: A freshly frozen :class:`repro.api.session.SessionSnapshot` the
    #: worker published for the daemon's catalog (``publish_snapshot``).
    snapshot: Optional[object] = None
    #: True when the serving session was opened from a catalog snapshot on
    #: this very query (the solve was skipped, copy-free).
    snapshot_attached: bool = False
    #: Replay-validated counterexample trace (``WitnessTrace.to_dict()``
    #: shape) when the job asked for a witness and the target is reachable.
    witness: Optional[Dict[str, object]] = None
    #: Typed extraction/validation failure (``"ExcType: message"``); the
    #: verdict above is still authoritative when this is set.
    witness_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "retried")


def _normalise_target(raw: object) -> Union[str, Tuple[object, ...]]:
    """Validate and freeze a request's target spec (hashable for coalescing)."""
    if isinstance(raw, str):
        return raw
    if isinstance(raw, (list, tuple)):
        if all(isinstance(item, str) for item in raw):
            return tuple(raw)
        normalised = []
        for item in raw:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not all(isinstance(part, int) for part in item)
            ):
                raise ProtocolError(
                    "BadRequest",
                    "target must be a string, a list of strings, or a list "
                    "of [module, pc] integer pairs",
                )
            normalised.append((item[0], item[1]))
        if normalised:
            return tuple(normalised)
    raise ProtocolError(
        "BadRequest",
        "target must be a string, a list of strings, or a list of "
        "[module, pc] integer pairs",
    )


def _request_limits(
    request: Dict[str, object], defaults: Optional[ResourceLimits]
) -> Optional[ResourceLimits]:
    """Per-request envelope: request fields override the daemon defaults."""
    fields = ("deadline_seconds", "node_budget", "max_iterations", "degrade")
    if not any(name in request for name in fields):
        return defaults

    def pick(name: str, fallback: object) -> object:
        return request[name] if name in request else fallback

    base = defaults if defaults is not None else ResourceLimits()
    try:
        limits = ResourceLimits(
            deadline_seconds=pick("deadline_seconds", base.deadline_seconds),
            node_budget=pick("node_budget", base.node_budget),
            max_iterations=pick("max_iterations", base.max_iterations),
            degrade=bool(pick("degrade", base.degrade)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError("BadRequest", f"invalid resource limits: {exc}")
    return limits if limits.bounded or limits.degrade else None


def parse_request(
    request: Dict[str, object],
    *,
    job_id: str,
    default_algorithm: str = "ef-opt",
    default_limits: Optional[ResourceLimits] = None,
) -> QueryJob:
    """Validate a decoded query request and build its :class:`QueryJob`.

    Every rejection raises :class:`ProtocolError` with a payload naming the
    offending field, so clients get a typed 4xx-style answer rather than a
    dropped connection or a stack trace.
    """
    program = request.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ProtocolError("BadRequest", "request needs a non-empty 'program' string")
    concurrent = bool(request.get("concurrent", False))
    algorithm = request.get("algorithm", default_algorithm)
    if not concurrent and algorithm not in SEQUENTIAL_ALGORITHMS:
        raise ProtocolError(
            "BadRequest",
            f"unknown algorithm {algorithm!r}; choose one of "
            f"{sorted(SEQUENTIAL_ALGORITHMS)}",
        )
    context_switches = request.get("context_switches", 2)
    if not isinstance(context_switches, int) or context_switches < 0:
        raise ProtocolError(
            "BadRequest", "context_switches must be a non-negative integer"
        )
    name = request.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("BadRequest", "name must be a string when given")
    optimize = request.get("optimize", 0)
    if isinstance(optimize, bool) or not isinstance(optimize, int) or not 0 <= optimize <= 2:
        raise ProtocolError("BadRequest", "optimize must be an integer 0, 1 or 2")
    if concurrent and optimize:
        raise ProtocolError(
            "BadRequest", "optimize is not supported for concurrent queries"
        )
    witness = bool(request.get("witness", False))
    if witness and concurrent:
        raise ProtocolError(
            "BadRequest",
            "witness traces are supported for sequential queries only; the "
            "bounded context-switching engine has no trace extraction",
        )
    target = _normalise_target(request.get("target", "error"))
    numeric_target = not (
        isinstance(target, str) or all(isinstance(item, str) for item in target)
    )
    if optimize >= 2 and numeric_target:
        raise ProtocolError(
            "BadRequest",
            "optimize level 2 renumbers program counters; numeric "
            "[module, pc] targets require optimize <= 1 (string specs "
            "'error'/'procedure:label' stay valid at any level)",
        )
    if witness and numeric_target and optimize:
        raise ProtocolError(
            "BadRequest",
            "witness traces cannot be mapped back through optimized pc "
            "numbering for numeric [module, pc] targets; use string specs "
            "or optimize 0",
        )
    program_hash = content_hash(program)
    if optimize:
        # Different levels compile different programs: keep them apart in
        # the session pool, the coalescer, the breaker and the snapshot
        # catalog — all of which key on this hash.
        program_hash = f"{program_hash}:O{optimize}"
    return QueryJob(
        id=job_id,
        name=name or job_id,
        program=program,
        program_hash=program_hash,
        target=target,
        algorithm=str(algorithm),
        concurrent=concurrent,
        context_switches=context_switches,
        early_stop=bool(request.get("early_stop", True)),
        limits=_request_limits(request, default_limits),
        optimize=optimize,
        witness=witness,
    )
