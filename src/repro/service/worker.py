"""Worker-side execution: pooled analysis sessions behind a message loop.

A service worker is a long-lived process owning a :class:`SessionCache` —
the materialised half of the daemon's session pool.  The driver keys the
pool and decides evictions (see :mod:`repro.service.pool`); the worker holds
the actual :class:`repro.api.AnalysisSession` objects, because BDD managers,
compiled plans and retained interpretations must never cross a process
boundary (the ownership contract of :mod:`repro.parallel.shards`).

The message protocol over the worker's pipe is deliberately tiny:

* ``("query", QueryJob)``  -> ``("result", job id, QueryOutcome)``
* ``("evict", hash)``      -> ``("evicted", hash, freed live nodes)``
* ``("stop",)``            -> the worker closes every session and exits.

:func:`execute_job` is transport-free so the daemon's in-process fallback
mode (``workers=0``) runs the *identical* code path on a driver-local cache
— keeping the single-process configuration measurable against the pooled
one, not a separate implementation.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..api.session import AnalysisSession
from ..boolprog import BoolProgError
from ..errors import AnalysisTimeout, ResourceExhausted
from ..limits import DEGRADATION_LADDER
from ..testing import faults
from .protocol import QueryJob, QueryOutcome, error_payload

__all__ = ["SessionCache", "execute_job", "worker_main"]


class _CacheEntry:
    """One pooled session plus the bookkeeping the outcome records need."""

    def __init__(self, session: AnalysisSession, from_snapshot: bool = False) -> None:
        self.session = session
        #: Algorithms whose summary fixed point this session has solved; a
        #: repeat query on one of them is a *warm* hit (post-pass, no solve).
        self.solved: set = set()
        self.queries = 0
        #: The session was attached from a daemon-catalog snapshot (the
        #: solve was skipped); the first query on it reports the attach.
        self.from_snapshot = from_snapshot
        self.attach_reported = False
        #: Algorithms whose snapshot this worker already published — a
        #: session is frozen at most once per algorithm per worker life.
        self.published: set = set()


class SessionCache:
    """Program-hash -> open session map, owned by one worker (or the driver).

    Eviction is commanded by the driver's pool index; the cache itself only
    opens, serves and closes sessions.  ``evict`` returns the live-node
    count released so the driver can reconcile its accounting even if its
    own estimate went stale between messages.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, job: QueryJob) -> _CacheEntry:
        """The pooled session for ``job``'s program (opened on first use).

        When the job carries a catalog snapshot, the session is attached
        copy-free to the frozen solved table instead of compiled from
        source — the warm-hit contract survives worker death.  A failed
        attach (segment already unlinked, incompatible image) silently
        degrades to the classic open-and-solve path.
        """
        entry = self._entries.get(job.program_hash)
        if entry is None:
            session = None
            from_snapshot = False
            if job.snapshot is not None:
                try:
                    session = AnalysisSession.from_snapshot(
                        job.snapshot, limits=job.limits
                    )
                    from_snapshot = True
                except Exception:  # noqa: BLE001 — degrade to a fresh session
                    session = None
            if session is None:
                # Pooled sessions serve arbitrary targets across requests,
                # so they optimize but never slice (slice_targets stays
                # unset); string specs resolve against the optimized CFG.
                session = AnalysisSession(
                    job.program,
                    default_algorithm=job.algorithm,
                    limits=job.limits,
                    optimize=job.optimize,
                )
            entry = _CacheEntry(session, from_snapshot=from_snapshot)
            if from_snapshot:
                entry.solved.add(job.snapshot.algorithm)
            self._entries[job.program_hash] = entry
        return entry

    def evict(self, program_hash: str) -> int:
        """Close and drop one pooled session; returns the live nodes freed."""
        entry = self._entries.pop(program_hash, None)
        if entry is None:
            return 0
        freed = entry.session.live_nodes()
        entry.session.close()
        return freed

    def close(self) -> None:
        """Close every pooled session (worker shutdown)."""
        for entry in self._entries.values():
            entry.session.close()
        self._entries.clear()


def _session_outcome(cache: SessionCache, job: QueryJob, started: float) -> QueryOutcome:
    """Run one sequential query against the pooled session for its program."""
    entry = cache.entry(job)
    session = entry.session
    # The envelope is per request, but the session is shared across requests
    # (and budgets): re-arm before every query.
    session.set_limits(job.limits)
    warm = job.algorithm in entry.solved
    entry.queries += 1
    if not warm:
        # Solve the target-independent summary up front so every later
        # query on this (program, algorithm) is a post-pass — the warm-hit
        # contract of the pool.  A failed solve (budget, target-dependent
        # system) degrades to the lazy per-query evaluation below.
        try:
            session.solve(job.algorithm)
        except ResourceExhausted:
            pass
        except ValueError:
            pass
    algorithm = job.algorithm
    degraded_from: Optional[str] = None
    try:
        result = session.check(
            list(job.target) if isinstance(job.target, tuple) else job.target,
            algorithm=algorithm,
            early_stop=job.early_stop,
        )
    except ResourceExhausted:
        fallback = (
            DEGRADATION_LADDER.get(algorithm)
            if job.limits is not None and job.limits.degrade
            else None
        )
        if fallback is None:
            raise
        result = session.check(
            list(job.target) if isinstance(job.target, tuple) else job.target,
            algorithm=fallback,
            early_stop=job.early_stop,
        )
        degraded_from = algorithm
        algorithm = fallback
    # A query answered from (or promoted to) the retained summary leaves
    # the session solved for this algorithm: the next query is a warm hit.
    if result.details.get("reused_solve") or not result.stopped_early:
        entry.solved.add(algorithm)
    snapshot = None
    if (
        job.publish_snapshot
        and algorithm in entry.solved
        and algorithm not in entry.published
        and not entry.from_snapshot
    ):
        # Freeze the solved table for the daemon's catalog so the warm-hit
        # contract survives this worker's death.  Only sessions that solved
        # locally publish (an attached overlay has nothing new to offer),
        # and a failed freeze (dict store) just skips the publication.
        try:
            snapshot = session.freeze(algorithm)
            entry.published.add(algorithm)
        except Exception:  # noqa: BLE001 — snapshots are an optimisation
            snapshot = None
    witness_dict: Optional[Dict[str, object]] = None
    witness_error: Optional[str] = None
    if job.witness and result.reachable:
        # Witness extraction is a post-pass on the pooled session's retained
        # summary; a typed failure is reported alongside the (authoritative)
        # verdict, never instead of it.
        from ..witness import WitnessError

        try:
            trace = session.explain(
                list(job.target) if isinstance(job.target, tuple) else job.target,
                algorithm=algorithm,
            )
        except WitnessError as exc:
            witness_error = f"{type(exc).__name__}: {exc}"
        else:
            witness_dict = trace.to_dict() if trace is not None else None
        # explain() solves when needed, so the session is warm afterwards.
        entry.solved.add(algorithm)
    attached = entry.from_snapshot and not entry.attach_reported
    entry.attach_reported = True
    live = session.live_nodes()
    gc = result.gc_stats() or {}
    return QueryOutcome(
        status="ok",
        reachable=result.reachable,
        algorithm=result.algorithm,
        degraded_from=degraded_from or result.degraded_from,
        warm=warm,
        iterations=result.iterations,
        elapsed_seconds=time.perf_counter() - started,
        session_live_nodes=live,
        gc_collections=int(gc.get("collections", 0) or 0),
        worker_pid=os.getpid(),
        snapshot=snapshot,
        snapshot_attached=attached,
        witness=witness_dict,
        witness_error=witness_error,
    )


def _concurrent_outcome(job: QueryJob, started: float) -> QueryOutcome:
    """Concurrent queries run without a pooled session (engine singletons)."""
    from ..frontends.getafix import check_concurrent_reachability

    result = check_concurrent_reachability(
        job.program,
        target=list(job.target) if isinstance(job.target, tuple) else job.target,
        context_switches=job.context_switches,
        early_stop=job.early_stop,
        limits=job.limits,
    )
    return QueryOutcome(
        status="ok",
        reachable=result.reachable,
        algorithm=result.algorithm,
        iterations=result.iterations,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
    )


def execute_job(cache: SessionCache, job: QueryJob) -> QueryOutcome:
    """Execute one job against ``cache``; never raises, always an outcome.

    Failure classification mirrors the shard taxonomy: typed resource
    exhaustion becomes ``timeout``/``resource`` with the consumed-vs-budget
    payload, user errors (parse, static semantics, bad targets) become
    ``error``, and anything unexpected becomes ``crashed`` — the session
    pool survives all three (PR 5's exhaustion contract keeps blown
    sessions usable).
    """
    started = time.perf_counter()
    try:
        # Fault-injection point (tests/CI): may delay, raise, or — in a
        # process marked as a pool worker — kill the process outright.
        faults.on_shard([job.name])
        if job.concurrent:
            return _concurrent_outcome(job, started)
        return _session_outcome(cache, job, started)
    except AnalysisTimeout as exc:
        return _failure(cache, job, "timeout", exc, exc.detail(), started)
    except ResourceExhausted as exc:
        return _failure(cache, job, "resource", exc, exc.detail(), started)
    except (BoolProgError, ValueError, KeyError) as exc:
        payload = error_payload(type(exc).__name__, str(exc))
        return _failure(cache, job, "error", exc, payload, started)
    except Exception as exc:  # noqa: BLE001 — a job failure must not kill the loop
        payload = error_payload(type(exc).__name__, str(exc))
        return _failure(cache, job, "crashed", exc, payload, started)


def _pooled_live_nodes(cache: SessionCache, job: QueryJob) -> int:
    """Live nodes of the job's pooled session, if one is open (0 otherwise).

    Reported on failure outcomes too: a session that blew its budget still
    holds nodes, and the driver's pool accounting must see them or the
    eviction policy undercounts exactly the sessions most worth evicting.
    """
    entry = cache._entries.get(job.program_hash)
    return entry.session.live_nodes() if entry is not None else 0


def _failure(
    cache: SessionCache,
    job: QueryJob,
    status: str,
    exc: BaseException,
    payload: Dict[str, object],
    started: float,
) -> QueryOutcome:
    if "message" not in payload:
        payload = dict(payload)
        payload["message"] = str(exc)
    live = 0
    if not job.concurrent:
        try:
            live = _pooled_live_nodes(cache, job)
        except Exception:  # noqa: BLE001 — accounting must not mask the failure
            live = 0
    return QueryOutcome(
        status=status,
        error=payload,
        elapsed_seconds=time.perf_counter() - started,
        session_live_nodes=live,
        worker_pid=os.getpid(),
    )


def worker_main(conn, fault_plan=None) -> None:
    """Entry point of one service worker process.

    Serves query/evict messages until a ``stop`` message or a closed pipe,
    then closes every pooled session.  The fault plan (tests/CI only) is
    installed with ``worker=True`` so injected kills are allowed to fire
    here — and only here; the same plan installed in the driver is inert.
    """
    if fault_plan is not None:
        faults.install(fault_plan, worker=True)
    cache = SessionCache()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "evict":
                freed = cache.evict(message[1])
                try:
                    conn.send(("evicted", message[1], freed))
                except (BrokenPipeError, OSError):
                    break
                continue
            if kind == "query":
                job: QueryJob = message[1]
                outcome = execute_job(cache, job)
                try:
                    conn.send(("result", job.id, outcome))
                except (BrokenPipeError, OSError):
                    break
                if outcome.snapshot is not None:
                    # The daemon received the handle and owns the segment
                    # now; drop this process's resource-tracker claim so a
                    # later worker exit cannot unlink it.  (If the send had
                    # failed, the claim would stay and the tracker would
                    # reap the orphaned segment — either way, no leak.)
                    outcome.snapshot.disown()
    finally:
        cache.close()
        try:
            conn.close()
        except OSError:
            pass
