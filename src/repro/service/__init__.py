"""Analysis-as-a-service: a resilient daemon over the session API.

The service stack turns the compile-once/query-many sessions of
:mod:`repro.api` into a long-running daemon with a warm session pool:

* :mod:`repro.service.protocol` — the JSONL wire protocol, request
  validation and the picklable :class:`QueryJob`/:class:`QueryOutcome`
  records.
* :mod:`repro.service.worker` — worker-side session cache and job
  execution (sessions never cross process boundaries).
* :mod:`repro.service.pool` — worker supervision with failover, the
  live-node-priced LRU pool index, and the per-program circuit breaker.
* :mod:`repro.service.daemon` — admission control, load shedding to the
  degradation ladder, request coalescing, metrics and graceful drain.

Run it with ``python -m repro.frontends.server`` (see the README's
"Running the service" section for the protocol).
"""

from .daemon import AnalysisDaemon, DaemonConfig, serve_stdio, serve_tcp
from .pool import CircuitBreaker, InlineWorkerPool, ProcessWorkerPool, SessionPoolIndex
from .protocol import (
    ProtocolError,
    QueryJob,
    QueryOutcome,
    content_hash,
    error_payload,
    parse_request,
)
from .worker import SessionCache, execute_job, worker_main

__all__ = [
    "AnalysisDaemon",
    "CircuitBreaker",
    "DaemonConfig",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "ProtocolError",
    "QueryJob",
    "QueryOutcome",
    "SessionCache",
    "SessionPoolIndex",
    "content_hash",
    "error_payload",
    "execute_job",
    "parse_request",
    "serve_stdio",
    "serve_tcp",
    "worker_main",
]
