"""The analysis daemon: a fault-tolerant service loop over the session pool.

:class:`AnalysisDaemon` is the long-lived front of the compile-once/
query-many stack.  Every request flows through the same governed path:

1. **Circuit breaker** — a program hash that repeatedly crashed or
   exhausted workers is answered immediately with a typed ``circuit-open``
   error; other programs keep being served.
2. **Admission control** — a bounded queue of admitted-but-unfinished
   requests.  Past the soft threshold the daemon *sheds to the degradation
   ladder* (the query runs the cheaper algorithm, verdict-preserving by
   construction); past the hard cap it answers a typed ``shed`` rejection.
   Overload never silently queues without bound and never drops a request.
3. **Coalescing** — concurrent requests for the same (program, algorithm,
   target, limits) await one shared execution; the hot program of a Zipf
   workload costs one solve, not N.
4. **Dispatch** — program-hash affinity onto the worker pool
   (:mod:`repro.service.pool`), per-request :class:`~repro.limits.ResourceLimits`
   armed in the worker, worker death retried once on a rebuilt worker.
5. **Pool upkeep** — the outcome's ``session_live_nodes`` updates the LRU
   index; sessions are evicted (worker-side) whenever the pool exceeds its
   live-node budget.

``health()``/``metrics()`` expose the cumulative counters the load
benchmark asserts on (warm hits, sheds, evictions, restarts, kernel/GC
totals, ``queries_per_solve``), and :meth:`shutdown` drains gracefully:
stop admitting, finish in-flight work, stop the workers.  The transports
(:func:`serve_stdio`, :func:`serve_tcp`) speak JSON Lines and wire
SIGTERM/SIGINT to that same drain path.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..limits import DEGRADATION_LADDER, ResourceLimits
from .pool import CircuitBreaker, InlineWorkerPool, ProcessWorkerPool, SessionPoolIndex
from .protocol import ProtocolError, QueryJob, QueryOutcome, error_payload, parse_request

__all__ = ["DaemonConfig", "AnalysisDaemon", "serve_stdio", "serve_tcp"]


@dataclass
class DaemonConfig:
    """Tunables of one daemon instance (all enforced, none advisory).

    ``workers=0`` selects the in-process fallback backend — same execution
    path, no process pool — kept first-class so its behaviour stays
    measurable against the pooled configuration.
    """

    workers: int = 2
    memory_budget_nodes: Optional[int] = 500_000
    max_pending: int = 64
    shed_threshold: int = 16
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    default_algorithm: str = "ef-opt"
    default_limits: Optional[ResourceLimits] = None
    drain_timeout: float = 10.0
    retry_backoff: float = 0.05
    start_method: Optional[str] = None
    fault_plan: Optional[object] = None
    #: Maintain a shared-memory snapshot catalog of solved tables: workers
    #: publish after their first solve per (program, algorithm), and a
    #: rebuilt worker (post-crash) or re-opened session attaches copy-free
    #: instead of re-solving.  The daemon owns the segments and unlinks
    #: them on replacement and at shutdown.
    snapshots: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process fallback)")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.shed_threshold < 1:
            raise ValueError("shed_threshold must be >= 1")
        if self.shed_threshold > self.max_pending:
            raise ValueError("shed_threshold must not exceed max_pending")


class AnalysisDaemon:
    """The service loop.  One instance per process; owns pool and workers."""

    def __init__(self, config: Optional[DaemonConfig] = None) -> None:
        self.config = config or DaemonConfig()
        self.pool_index = SessionPoolIndex(self.config.memory_budget_nodes)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown,
        )
        if self.config.workers >= 1:
            self._pool = ProcessWorkerPool(
                self.config.workers,
                fault_plan=self.config.fault_plan,
                start_method=self.config.start_method,
                retry_backoff=self.config.retry_backoff,
                on_evicted=self._on_evicted,
            )
        else:
            self._pool = InlineWorkerPool(
                fault_plan=self.config.fault_plan, on_evicted=self._on_evicted
            )
        self._started = False
        self._draining = False
        self._drained = asyncio.Event()
        self._pending = 0
        self._busy: Dict[str, int] = {}
        self._inflight: Dict[tuple, "asyncio.Future[QueryOutcome]"] = {}
        self._request_counter = 0
        self._started_at = time.monotonic()
        #: (program_hash, algorithm) -> SessionSnapshot.  The daemon owns
        #: every catalogued segment; worker death does not invalidate an
        #: entry (that is the point), unlinking happens on replacement and
        #: in :meth:`shutdown` after the workers stopped.
        self._snapshots: Dict[tuple, object] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "answered": 0,
            "coalesced": 0,
            "shed_ladder": 0,
            "shed_rejected": 0,
            "circuit_open_rejections": 0,
            "evictions": 0,
            "evicted_nodes": 0,
            "warm_queries": 0,
            "solves": 0,
            "retried": 0,
            "gc_collections": 0,
            "draining_rejections": 0,
            "snapshots_published": 0,
            "snapshot_attaches": 0,
        }
        self.status_counts: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        await self._pool.start()
        self._started = True
        self._started_at = time.monotonic()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful drain: stop admitting, finish in-flight, stop workers."""
        self._draining = True
        if drain and self._pending > 0:
            deadline = time.monotonic() + self.config.drain_timeout
            while self._pending > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        await self._pool.stop()
        # Workers are gone (their views detached with them); destroy every
        # catalogued segment.  unlink is idempotent, so a segment a dying
        # worker's resource tracker already reaped is not an error.
        for snapshot in self._snapshots.values():
            try:
                snapshot.unlink()
            except Exception:  # noqa: BLE001 — drain must not fail on cleanup
                pass
        self._snapshots.clear()
        self._drained.set()

    @property
    def draining(self) -> bool:
        return self._draining

    def _on_evicted(self, program_hash: str, freed_nodes: int) -> None:
        self.counters["evicted_nodes"] += int(freed_nodes)

    # -- request handling ------------------------------------------------
    async def handle_request(self, request: object) -> Dict[str, object]:
        """Answer one decoded request object; never raises, never drops."""
        if not isinstance(request, dict):
            return self._error_response(
                None, "error", error_payload("BadRequest", "request must be a JSON object")
            )
        request_id = request.get("id")
        op = request.get("op", "query")
        if op == "health":
            return {"id": request_id, "ok": True, "op": "health", **self.health()}
        if op == "metrics":
            return {"id": request_id, "ok": True, "op": "metrics", **self.metrics()}
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return {"id": request_id, "ok": True, "op": "shutdown", "draining": True}
        if op == "lint":
            return self._handle_lint(request, request_id)
        if op == "witness":
            # A query that must carry a counterexample trace: same admission,
            # pooling and coalescing path, with the witness flag forced on.
            request = dict(request)
            request["witness"] = True
            return await self._handle_query(request, request_id)
        if op != "query":
            return self._error_response(
                request_id, "error", error_payload("BadRequest", f"unknown op {op!r}")
            )
        return await self._handle_query(request, request_id)

    def _handle_lint(self, request: Dict[str, object], request_id) -> Dict[str, object]:
        """Static diagnostics for one program — no session, no worker hop.

        Linting is a pure front-end pass (:func:`repro.analysis.lint_program`):
        parse, typecheck, run the optimizer's closures in reporting mode.
        It runs inline in the service loop; ``findings`` mirrors the CLI's
        ``repro lint`` JSON shape so clients share one consumer.
        """
        from ..analysis import lint_program
        from ..boolprog import BoolProgError

        program = request.get("program")
        if not isinstance(program, str) or not program.strip():
            return self._error_response(
                request_id,
                "error",
                error_payload("BadRequest", "request needs a non-empty 'program' string"),
            )
        try:
            findings = lint_program(program)
        except BoolProgError as exc:
            return self._error_response(
                request_id, "error", error_payload(type(exc).__name__, str(exc))
            )
        except Exception as exc:  # noqa: BLE001 — the service answers, always
            return self._error_response(
                request_id, "crashed", error_payload(type(exc).__name__, str(exc))
            )
        self.status_counts["ok"] = self.status_counts.get("ok", 0) + 1
        return {
            "id": request_id,
            "ok": True,
            "op": "lint",
            "clean": not findings,
            "findings": [finding.to_dict() for finding in findings],
        }

    async def _handle_query(self, request: Dict[str, object], request_id) -> Dict[str, object]:
        self.counters["requests"] += 1
        self._request_counter += 1
        job_id = f"q{self._request_counter}"
        if self._draining:
            self.counters["draining_rejections"] += 1
            return self._error_response(
                request_id,
                "draining",
                error_payload("ServiceDraining", "the daemon is shutting down"),
            )
        try:
            job = parse_request(
                request,
                job_id=job_id,
                default_algorithm=self.config.default_algorithm,
                default_limits=self.config.default_limits,
            )
        except ProtocolError as exc:
            return self._error_response(request_id, "error", exc.payload)

        allowed, retry_after = self.breaker.allow(job.program_hash)
        if not allowed:
            self.counters["circuit_open_rejections"] += 1
            return self._error_response(
                request_id,
                "circuit-open",
                error_payload(
                    "CircuitOpen",
                    f"program {job.program_hash[:12]} is quarantined after "
                    f"{self.breaker.strikes(job.program_hash)} consecutive failures",
                    retry_after_seconds=round(retry_after, 3),
                ),
            )

        shed = False
        shed_from: Optional[str] = None
        if self._pending >= self.config.max_pending:
            self.counters["shed_rejected"] += 1
            return self._error_response(
                request_id,
                "shed",
                error_payload(
                    "Overloaded",
                    f"admission queue is full ({self._pending} pending, "
                    f"cap {self.config.max_pending})",
                    pending=self._pending,
                    max_pending=self.config.max_pending,
                ),
            )
        if self._pending >= self.config.shed_threshold and not job.concurrent:
            # Soft overload: shed to the degradation ladder before rejecting
            # — run the cheaper algorithm now rather than queueing the
            # expensive one (verdicts agree across the ladder).
            fallback = DEGRADATION_LADDER.get(job.algorithm)
            if fallback is not None:
                shed_from = job.algorithm
                job = replace(job, algorithm=fallback)
                shed = True
                self.counters["shed_ladder"] += 1

        if self.config.snapshots and not job.concurrent:
            # Catalog hit: ship the frozen solved table with the job so the
            # worker (fresh, rebuilt after a crash, or post-eviction)
            # attaches copy-free instead of re-solving.  Miss: ask the
            # worker to publish once it has solved.
            catalogued = self._snapshots.get((job.program_hash, job.algorithm))
            job = replace(
                job, snapshot=catalogued, publish_snapshot=catalogued is None
            )

        key = job.coalesce_key()
        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["coalesced"] += 1
            outcome = await asyncio.shield(existing)
            return self._outcome_response(
                request_id, job, outcome, shed=shed, shed_from=shed_from, coalesced=True
            )

        future: "asyncio.Future[QueryOutcome]" = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._pending += 1
        self._busy[job.program_hash] = self._busy.get(job.program_hash, 0) + 1
        outcome: Optional[QueryOutcome] = None
        try:
            outcome = await self._execute(job)
        finally:
            self._pending -= 1
            remaining = self._busy.get(job.program_hash, 1) - 1
            if remaining <= 0:
                self._busy.pop(job.program_hash, None)
            else:
                self._busy[job.program_hash] = remaining
            self._inflight.pop(key, None)
            if outcome is None:
                outcome = QueryOutcome(
                    status="crashed",
                    error=error_payload("InternalError", "query execution failed"),
                )
            if not future.done():
                # Coalesced waiters share this future; resolve it even on the
                # error path so none of them hang.
                future.set_result(outcome)
        self._record_outcome(job, outcome)
        await self._enforce_memory_budget()
        return self._outcome_response(
            request_id, job, outcome, shed=shed, shed_from=shed_from, coalesced=False
        )

    async def _execute(self, job: QueryJob) -> QueryOutcome:
        try:
            return await self._pool.submit(job)
        except Exception as exc:  # noqa: BLE001 — the service answers, always
            return QueryOutcome(
                status="crashed",
                error=error_payload(type(exc).__name__, str(exc)),
            )

    # -- bookkeeping -----------------------------------------------------
    def _record_outcome(self, job: QueryJob, outcome: QueryOutcome) -> None:
        self.counters["answered"] += 1
        self.status_counts[outcome.status] = self.status_counts.get(outcome.status, 0) + 1
        if outcome.status == "retried":
            self.counters["retried"] += 1
        self.breaker.record(job.program_hash, outcome.status)
        if not job.concurrent and outcome.session_live_nodes >= 0:
            worker = self._pool.worker_index(job.program_hash)
            delta = self.pool_index.touch(
                job.program_hash,
                worker,
                outcome.session_live_nodes,
                outcome.gc_collections,
            )
            self.counters["gc_collections"] += delta
        if outcome.snapshot is not None:
            catalog_key = (job.program_hash, outcome.snapshot.algorithm)
            previous = self._snapshots.get(catalog_key)
            self._snapshots[catalog_key] = outcome.snapshot
            self.counters["snapshots_published"] += 1
            if previous is not None:
                try:
                    previous.unlink()
                except Exception:  # noqa: BLE001 — replacement must not fail
                    pass
        if outcome.snapshot_attached:
            self.counters["snapshot_attaches"] += 1
        if outcome.ok:
            if outcome.warm:
                self.counters["warm_queries"] += 1
            else:
                self.counters["solves"] += 1

    async def _enforce_memory_budget(self) -> None:
        victims = self.pool_index.evictions(set(self._busy))
        for program_hash, worker_index in victims:
            self.counters["evictions"] += 1
            await self._pool.evict(program_hash, worker_index)

    # -- rendering -------------------------------------------------------
    def _error_response(self, request_id, status: str, payload: Dict[str, object]) -> Dict[str, object]:
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        return {"id": request_id, "ok": False, "status": status, "error": payload}

    def _outcome_response(
        self,
        request_id,
        job: QueryJob,
        outcome: QueryOutcome,
        *,
        shed: bool,
        shed_from: Optional[str] = None,
        coalesced: bool,
    ) -> Dict[str, object]:
        response: Dict[str, object] = {
            "id": request_id,
            "name": job.name,
            "ok": outcome.ok,
            "status": outcome.status,
        }
        if outcome.reachable is not None:
            response["reachable"] = outcome.reachable
        if outcome.algorithm is not None:
            response["algorithm"] = outcome.algorithm
        if outcome.degraded_from is not None:
            response["degraded_from"] = outcome.degraded_from
        if shed:
            response["shed"] = True
            if shed_from is not None:
                response["shed_from"] = shed_from
        if coalesced:
            response["coalesced"] = True
        if outcome.warm:
            response["warm"] = True
        if outcome.snapshot_attached:
            response["snapshot_attached"] = True
        if outcome.retries:
            response["retries"] = outcome.retries
        if outcome.witness is not None:
            response["witness"] = outcome.witness
        if outcome.witness_error is not None:
            response["witness_error"] = outcome.witness_error
        response["iterations"] = outcome.iterations
        response["elapsed_seconds"] = round(outcome.elapsed_seconds, 6)
        if outcome.error is not None:
            response["error"] = outcome.error
        return response

    # -- introspection ---------------------------------------------------
    def health(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "pending": self._pending,
            "workers": {
                "configured": self.config.workers,
                "alive": self._pool.alive_count(),
                "restarts": self._pool.restarts,
            },
            "pool": {
                "sessions": len(self.pool_index),
                "live_nodes": self.pool_index.total_live_nodes(),
                "memory_budget_nodes": self.config.memory_budget_nodes,
            },
            "circuit_open": [h[:12] for h in self.breaker.open_hashes()],
        }

    def metrics(self) -> Dict[str, object]:
        warm = self.counters["warm_queries"]
        solves = self.counters["solves"]
        queries = warm + solves
        return {
            "counters": dict(self.counters),
            "statuses": dict(self.status_counts),
            "queries_per_solve": (queries / solves) if solves else float(queries or 1),
            "breaker": {
                "trips": self.breaker.trips,
                "open": [h[:12] for h in self.breaker.open_hashes()],
            },
            "pool": self.pool_index.snapshot(),
            "snapshots": {
                "enabled": self.config.snapshots,
                "catalog": len(self._snapshots),
                "segments": [
                    getattr(snapshot, "segment", "?")
                    for snapshot in self._snapshots.values()
                ],
            },
            "workers": self._pool.worker_states(),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
        }


# ---------------------------------------------------------------------------
# Transports: JSON Lines over stdio or TCP, with signal-driven drain.
# ---------------------------------------------------------------------------

async def _handle_line(daemon: AnalysisDaemon, line: str) -> str:
    line = line.strip()
    if not line:
        return ""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        response = daemon._error_response(
            None, "error", error_payload("BadRequest", f"invalid JSON: {exc}")
        )
        return json.dumps(response)
    try:
        response = await daemon.handle_request(request)
    except Exception as exc:  # noqa: BLE001 — the transport answers, always
        response = daemon._error_response(
            request.get("id") if isinstance(request, dict) else None,
            "crashed",
            error_payload(type(exc).__name__, str(exc)),
        )
    return json.dumps(response)


def _install_signal_handlers(daemon: AnalysisDaemon, stop_event: asyncio.Event) -> None:
    import signal

    loop = asyncio.get_running_loop()

    def _trigger() -> None:
        daemon._draining = True
        stop_event.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, _trigger)
        except (NotImplementedError, RuntimeError):  # non-main thread / platform
            pass


async def serve_stdio(daemon: AnalysisDaemon, stdin=None, stdout=None) -> None:
    """Serve JSONL requests from stdin until EOF or SIGTERM/SIGINT, then drain.

    Stdin is pumped by a *daemon* thread into an asyncio queue: a thread
    blocked in ``readline`` must never keep the process alive after a
    signal-triggered drain (a ``run_in_executor`` worker would — executor
    threads are non-daemon and joined at loop shutdown).
    """
    import sys
    import threading

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stop_event = asyncio.Event()
    await daemon.start()
    _install_signal_handlers(daemon, stop_event)
    loop = asyncio.get_running_loop()
    lines: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
    tasks = set()

    def _pump() -> None:
        try:
            for line in iter(stdin.readline, ""):
                loop.call_soon_threadsafe(lines.put_nowait, line)
        except (ValueError, OSError):  # stdin closed mid-read
            pass
        try:
            loop.call_soon_threadsafe(lines.put_nowait, None)  # EOF marker
        except RuntimeError:  # loop already closed
            pass

    threading.Thread(target=_pump, daemon=True, name="repro-server-stdin").start()

    async def _serve_one(line: str) -> None:
        response = await _handle_line(daemon, line)
        if response:
            stdout.write(response + "\n")
            stdout.flush()

    while not stop_event.is_set():
        getter = asyncio.ensure_future(lines.get())
        stopper = asyncio.ensure_future(stop_event.wait())
        done, pending = await asyncio.wait(
            {getter, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        for waiter in pending:
            waiter.cancel()
        if getter not in done:
            break
        line = getter.result()
        if line is None:  # EOF
            break
        task = asyncio.ensure_future(_serve_one(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    await daemon.shutdown()


async def serve_tcp(
    daemon: AnalysisDaemon, host: str = "127.0.0.1", port: int = 0
) -> None:
    """Serve JSONL requests over TCP until SIGTERM/SIGINT, then drain."""
    stop_event = asyncio.Event()
    await daemon.start()
    _install_signal_handlers(daemon, stop_event)

    async def _client(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        pending = set()

        async def _serve_one(line: bytes) -> None:
            response = await _handle_line(daemon, line.decode("utf-8", "replace"))
            if response:
                async with write_lock:
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.ensure_future(_serve_one(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()

    server = await asyncio.start_server(_client, host=host, port=port)
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    print(f"repro-server: listening on {addr[0]}:{addr[1]}", flush=True)
    async with server:
        await stop_event.wait()
    await daemon.shutdown()
