"""Getafix reproduction: analyzing recursive Boolean programs with a fixed-point calculus.

The package reproduces "Analyzing Recursive Programs using a Fixed-point
Calculus" (La Torre, Madhusudan, Parlato — PLDI 2009).  The main entry points
are:

* :func:`repro.frontends.check_reachability` — the GETAFIX front door: parse a
  Boolean program, pick an algorithm, answer a reachability query.
* :class:`repro.api.AnalysisSession` — the compile-once / query-many session
  API: one program, many targets, with interpretation reuse across queries.
* :mod:`repro.fixedpoint` — the fixed-point calculus used to *write* the
  model-checking algorithms.
* :mod:`repro.algorithms` — the paper's algorithms expressed as equation
  systems in that calculus.
* :mod:`repro.baselines` — BEBOP- and MOPED-style comparison engines and the
  Lal–Reps sequentialisation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
