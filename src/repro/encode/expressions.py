"""Compilation of Boolean-program expressions into BDDs over state bits.

An expression is evaluated over a particular *state copy* (a typed variable of
the state sort, such as the encoder's canonical ``x``): program variables
resolve either to a global field or to the local slot assigned to them by the
enclosing module.  Each occurrence of the nondeterministic expression ``*``
turns into a fresh *choice bit*; the caller existentially quantifies the
choice bits once the full edge constraint has been assembled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bdd import BddManager
from ..boolprog.ast import BinOp, Expr, Lit, Nondet, NotE, VarRef
from ..fixedpoint import Var
from .statespace import StateSpace

__all__ = ["ChoicePool", "VariableResolver", "compile_expr"]


class ChoicePool:
    """A pool of auxiliary BDD bits used to model nondeterministic choices."""

    PREFIX = "__choice"

    def __init__(self, manager: BddManager) -> None:
        self._manager = manager
        self._allocated: List[str] = []
        self._active: List[str] = []

    def fresh(self) -> str:
        """Return a choice bit unused in the current edge."""
        index = len(self._active)
        if index == len(self._allocated):
            name = f"{self.PREFIX}{index}"
            if name not in self._manager.var_names:
                self._manager.add_var(name)
            self._allocated.append(name)
        name = self._allocated[index]
        self._active.append(name)
        return name

    def active(self) -> List[str]:
        """Choice bits handed out since the last :meth:`reset`."""
        return list(self._active)

    def reset(self) -> None:
        """Start a new edge: previously handed-out bits become reusable."""
        self._active = []

    def quantify(self, node: int) -> int:
        """Existentially quantify the active choice bits out of ``node``."""
        active = self.active()
        if not active:
            return node
        return self._manager.exists(node, active)


class VariableResolver:
    """Maps program variable names to state bits for one module.

    ``global_map`` maps a source-level global name to the field name used in
    the globals struct (identical for sequential programs; prefixed with the
    thread name for thread-private globals of concurrent programs).
    ``slot_of`` is the module's local-slot map from the CFG.
    """

    def __init__(
        self,
        space: StateSpace,
        slot_of: Dict[str, int],
        global_map: Optional[Dict[str, str]] = None,
    ) -> None:
        self._space = space
        self._slot_of = dict(slot_of)
        if global_map is None:
            global_map = {name: name for name in space.global_names}
        self._global_map = dict(global_map)

    def is_global(self, name: str) -> bool:
        """True iff the name denotes a global variable in this module."""
        return name in self._global_map and name not in self._slot_of

    def bit_name(self, state: Var, name: str) -> str:
        """The BDD bit carrying ``name`` in the given state copy."""
        if name in self._slot_of:
            field = self._space.local_field(self._slot_of[name])
            return f"{state.__dict__['name']}.L.{field}"
        if name in self._global_map:
            field = self._global_map[name]
            return f"{state.__dict__['name']}.G.{field}"
        raise KeyError(f"variable {name!r} is neither a local slot nor a global")

    def slot_bit(self, state: Var, slot: int) -> str:
        """The BDD bit of a local slot index in the given state copy."""
        return f"{state.__dict__['name']}.L.{self._space.local_field(slot)}"

    def global_bit(self, state: Var, field: str) -> str:
        """The BDD bit of a globals-struct field in the given state copy."""
        return f"{state.__dict__['name']}.G.{field}"

    def global_fields(self) -> List[str]:
        """All globals-struct field names."""
        return self._space.globals_sort.field_names()

    def local_fields(self) -> List[str]:
        """All locals-struct field names."""
        return self._space.locals_sort.field_names()


def compile_expr(
    expression: Expr,
    state: Var,
    resolver: VariableResolver,
    manager: BddManager,
    choices: ChoicePool,
) -> int:
    """Compile an expression into a BDD over the bits of ``state``.

    Occurrences of ``*`` draw fresh bits from ``choices``; the caller is
    responsible for quantifying them over the complete edge constraint.
    """
    if isinstance(expression, Lit):
        return manager.TRUE if expression.value else manager.FALSE
    if isinstance(expression, Nondet):
        return manager.var(choices.fresh())
    if isinstance(expression, VarRef):
        return manager.var(resolver.bit_name(state, expression.name))
    if isinstance(expression, NotE):
        return manager.not_(compile_expr(expression.operand, state, resolver, manager, choices))
    if isinstance(expression, BinOp):
        left = compile_expr(expression.left, state, resolver, manager, choices)
        right = compile_expr(expression.right, state, resolver, manager, choices)
        if expression.op == "&":
            return manager.and_(left, right)
        if expression.op == "|":
            return manager.or_(left, right)
        if expression.op == "^":
            return manager.xor(left, right)
        if expression.op == "==":
            return manager.iff(left, right)
        if expression.op == "!=":
            return manager.xor(left, right)
        raise ValueError(f"unknown operator {expression.op!r}")
    raise TypeError(f"cannot compile expression {expression!r}")
