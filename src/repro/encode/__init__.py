"""Symbolic encoding of Boolean programs into template relations."""

from .statespace import StateSpace
from .expressions import ChoicePool, VariableResolver, compile_expr
from .templates import SequentialEncoder, TemplateSet
from .concurrent import ConcurrentEncoder, ConcurrentTemplateSet
from .allocation import affinity_order

__all__ = [
    "StateSpace",
    "ChoicePool",
    "VariableResolver",
    "compile_expr",
    "SequentialEncoder",
    "TemplateSet",
    "ConcurrentEncoder",
    "ConcurrentTemplateSet",
    "affinity_order",
]
