"""Template relations for concurrent Boolean programs.

The bounded context-switching algorithm of Section 5 works on per-thread
summaries, so the program encoding is almost the sequential one: the threads
are merged into a single module space (procedure ``p`` of thread ``T`` becomes
module ``T__p``) and the globals struct holds the shared variables plus every
thread's private globals.  The only concurrent-specific template is
``InitThread(t, u)``: thread ``t`` starts at the entry of its own ``main``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..boolprog.cfg import build_cfg
from ..boolprog.concurrent import ConcurrentProgram
from ..boolprog.transform import merge_threads
from ..fixedpoint import EnumSort, RelationDecl, Var
from ..fixedpoint.symbolic import SymbolicBackend
from ..fixedpoint.terms import Field
from .templates import SequentialEncoder, TemplateSet

__all__ = ["ConcurrentTemplateSet", "ConcurrentEncoder"]


@dataclass
class ConcurrentTemplateSet:
    """Sequential templates plus the thread-aware pieces."""

    base: TemplateSet
    thread_sort: EnumSort
    thread_mains: List[str]

    def decl(self, name: str) -> RelationDecl:
        """Declaration of a template relation (sequential or thread-aware)."""
        return self.base.decls[name]

    def inputs(self) -> List[RelationDecl]:
        """All template declarations."""
        return list(self.base.decls.values())

    def interps(self) -> Dict[str, int]:
        """Relation name -> BDD interpretation."""
        return dict(self.base.interpretations)

    @property
    def space(self):
        """The state space sorts of the merged program."""
        return self.base.space


class ConcurrentEncoder:
    """Builds template relations for a concurrent Boolean program."""

    def __init__(self, program: ConcurrentProgram) -> None:
        self.program = program
        self.merged, self.thread_mains = merge_threads(program)
        self.cfg = build_cfg(self.merged)
        self.base = SequentialEncoder(self.cfg)
        self.thread_sort = EnumSort("Thread", max(1, program.num_threads))
        self.base.decls["InitThread"] = RelationDecl(
            "InitThread",
            [("ti", self.thread_sort), ("u", self.base.space.state_sort)],
        )
        self.base.decls["InitGlobals"] = RelationDecl(
            "InitGlobals", [("u", self.base.space.state_sort)]
        )

    @property
    def space(self):
        """The state space of the merged program."""
        return self.base.space

    def input_decls(self) -> List[RelationDecl]:
        """All template declarations, including ``InitThread``."""
        return self.base.input_decls()

    def module_of(self, thread_name: str, procedure: str) -> int:
        """Module index of a procedure of a given thread."""
        return self.cfg.module_of(f"{thread_name}__{procedure}")

    def label_location(self, thread_name: str, procedure: str, label: str) -> Tuple[int, int]:
        """(module, pc) of a labelled statement of a thread procedure."""
        return self.cfg.label_location(f"{thread_name}__{procedure}", label)

    def error_locations(self) -> List[Tuple[int, int]]:
        """(module, pc) pairs of assertion-failure locations across all threads."""
        return self.cfg.error_locations()

    def encode(
        self,
        backend: SymbolicBackend,
        target_locations: Sequence[Tuple[int, int]],
    ) -> ConcurrentTemplateSet:
        """Build all template BDDs, including ``InitThread``."""
        base_templates = self.base.encode(backend, target_locations)
        base_templates.interpretations["InitThread"] = self._encode_init_thread(backend)
        base_templates.decls["InitThread"] = self.base.decls["InitThread"]
        base_templates.interpretations["InitGlobals"] = self._encode_init_globals(backend)
        base_templates.decls["InitGlobals"] = self.base.decls["InitGlobals"]
        return ConcurrentTemplateSet(
            base=base_templates,
            thread_sort=self.thread_sort,
            thread_mains=list(self.thread_mains),
        )

    def _encode_init_globals(self, backend: SymbolicBackend) -> int:
        """Initial values of the globals of the whole concurrent program.

        Shared globals named in the program's ``init`` section start at the
        declared value; every other global (shared or thread-private) starts
        False, in line with the deterministic-initialisation semantics.
        """
        mgr = backend.manager
        node = mgr.TRUE
        for field_name in self.base.space.globals_sort.field_names():
            value = self.program.init.get(field_name, False)
            bit = f"u.G.{field_name}"
            node = mgr.and_(node, mgr.var(bit) if value else mgr.nvar(bit))
        return node

    def _encode_init_thread(self, backend: SymbolicBackend) -> int:
        mgr = backend.manager
        context = backend.context
        ti = Var("ti", self.thread_sort)
        u = Var("u", self.base.space.state_sort)
        # A thread starts at the entry of its main with all locals False.
        locals_false = mgr.conjoin(
            mgr.nvar(f"u.L.{field_name}")
            for field_name in self.base.space.locals_sort.field_names()
        )
        disjuncts = []
        for index, main_name in enumerate(self.thread_mains):
            module = self.cfg.module_of(main_name)
            entry = self.cfg.procedure_cfg(main_name).entry
            disjuncts.append(
                mgr.conjoin(
                    [
                        context.encode_cube(ti, index),
                        context.encode_cube(Field(u, "mod"), module),
                        context.encode_cube(Field(u, "pc"), entry),
                        locals_false,
                    ]
                )
            )
        return mgr.disjoin(disjuncts)
