"""Template relations of a sequential Boolean program as BDDs.

The encoder produces exactly the interface described in Section 4 of the
paper (and in Figure 1): the relations ``ProgramInt``, ``IntoCall``,
``Return``, ``Entry``, ``Exit``, ``Init`` and ``Target``, each represented by
a BDD over the bits of its canonical parameters.  The reachability
*algorithms* (the fixed-point formulas of Sections 4.1–4.3) are written
purely against these relations and never look at the program again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..boolprog.ast import Expr, Nondet
from ..boolprog.cfg import CallEdge, InternalEdge, ProcedureCfg, ProgramCfg, RETURN_SLOT_PREFIX
from ..fixedpoint import RelationDecl, Var
from ..fixedpoint.symbolic import SymbolicBackend
from ..fixedpoint.terms import Field
from .expressions import ChoicePool, VariableResolver, compile_expr
from .statespace import StateSpace

__all__ = ["TemplateSet", "SequentialEncoder"]


@dataclass
class TemplateSet:
    """Declarations and BDD interpretations of the program template relations."""

    space: StateSpace
    decls: Dict[str, RelationDecl]
    interpretations: Dict[str, int]
    module_index: Dict[str, int]
    main_module: int

    def decl(self, name: str) -> RelationDecl:
        """The declaration of a template relation."""
        return self.decls[name]

    def inputs(self) -> List[RelationDecl]:
        """All template declarations (the input relations of the algorithms)."""
        return list(self.decls.values())

    def interps(self) -> Dict[str, int]:
        """Relation name -> BDD interpretation."""
        return dict(self.interpretations)


class SequentialEncoder:
    """Builds the template relations of a sequential Boolean program."""

    #: Canonical parameter names used by the template declarations.  They are
    #: chosen to match the variable names the algorithms use, so most relation
    #: applications need no renaming at all.
    STATE_PARAMS = ("u", "v", "x", "y", "z", "w")

    def __init__(self, cfg: ProgramCfg) -> None:
        self.cfg = cfg
        self.space = StateSpace.build(
            num_modules=max(1, len(cfg.procedures)),
            max_pc=cfg.max_pc,
            num_slots=cfg.max_slots,
            global_names=cfg.program.globals,
        )
        state = self.space.state_sort
        module = self.space.module_sort
        pc = self.space.pc_sort
        self.decls: Dict[str, RelationDecl] = {
            "ProgramInt": RelationDecl("ProgramInt", [("x", state), ("v", state)]),
            "IntoCall": RelationDecl("IntoCall", [("x", state), ("y", state)]),
            "Return": RelationDecl("Return", [("x", state), ("z", state), ("w", state)]),
            "Entry": RelationDecl("Entry", [("mod", module), ("pc", pc)]),
            "Exit": RelationDecl("Exit", [("mod", module), ("pc", pc)]),
            "Init": RelationDecl("Init", [("u", state)]),
            "Target": RelationDecl("Target", [("mod", module), ("pc", pc)]),
        }

    # ------------------------------------------------------------------
    def input_decls(self) -> List[RelationDecl]:
        """The template declarations, to be listed as equation-system inputs."""
        return list(self.decls.values())

    def encode(
        self,
        backend: SymbolicBackend,
        target_locations: Sequence[Tuple[int, int]],
    ) -> TemplateSet:
        """Build every template BDD using the backend's manager.

        ``target_locations`` is the list of (module index, pc) pairs whose
        reachability is being asked about.
        """
        templates = self.encode_base(backend)
        templates.interpretations["Target"] = self.encode_target(backend, target_locations)
        return templates

    def encode_base(self, backend: SymbolicBackend) -> TemplateSet:
        """Build the six *target-independent* template BDDs.

        Everything the program itself determines — ``ProgramInt``,
        ``IntoCall``, ``Return``, ``Entry``, ``Exit``, ``Init`` — is encoded
        here; only ``Target`` depends on the query, so a compile-once /
        query-many session encodes this base a single time and calls
        :meth:`encode_target` per query.  The returned set has no ``Target``
        interpretation (its declaration is still listed).
        """
        self._bind(backend)
        interpretations = {
            "ProgramInt": self._encode_internal(),
            "IntoCall": self._encode_into_call(),
            "Return": self._encode_return(),
            "Entry": self._encode_entry(),
            "Exit": self._encode_exit(),
            "Init": self._encode_init(),
        }
        return TemplateSet(
            space=self.space,
            decls=dict(self.decls),
            interpretations=interpretations,
            module_index=dict(self.cfg.module_index),
            main_module=self.cfg.module_of(self.cfg.program.main),
        )

    def encode_target(
        self,
        backend: SymbolicBackend,
        target_locations: Sequence[Tuple[int, int]],
    ) -> int:
        """Build just the ``Target`` BDD for one query's locations."""
        self._bind(backend)
        return self._encode_target(target_locations)

    def _bind(self, backend: SymbolicBackend) -> None:
        self._backend = backend
        self._manager = backend.manager
        self._context = backend.context
        self._choices = ChoicePool(self._manager)

    # ------------------------------------------------------------------
    # Canonical state variables
    # ------------------------------------------------------------------
    def state_var(self, name: str) -> Var:
        """A canonical state-sorted variable (``u``, ``v``, ``x``, ...)."""
        return Var(name, self.space.state_sort)

    def _resolver(self, procedure: ProcedureCfg) -> VariableResolver:
        return VariableResolver(self.space, procedure.slot_of, self._global_map())

    def _global_map(self) -> Dict[str, str]:
        return {name: name for name in self.space.global_names}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def _field_cube(self, state: Var, field_name: str, value: int) -> int:
        return self._context.encode_cube(Field(state, field_name), value)

    def _at(self, state: Var, module: int, pc: int) -> int:
        return self._manager.and_(
            self._field_cube(state, "mod", module), self._field_cube(state, "pc", pc)
        )

    def _globals_equal(self, left: Var, right: Var, except_fields: Iterable[str] = ()) -> int:
        mgr = self._manager
        skip = set(except_fields)
        node = mgr.TRUE
        for field_name in self.space.globals_sort.field_names():
            if field_name in skip:
                continue
            left_bit = f"{left.__dict__['name']}.G.{field_name}"
            right_bit = f"{right.__dict__['name']}.G.{field_name}"
            node = mgr.and_(node, mgr.iff(mgr.var(left_bit), mgr.var(right_bit)))
        return node

    def _locals_equal(self, left: Var, right: Var, except_fields: Iterable[str] = ()) -> int:
        mgr = self._manager
        skip = set(except_fields)
        node = mgr.TRUE
        for field_name in self.space.locals_sort.field_names():
            if field_name in skip:
                continue
            left_bit = f"{left.__dict__['name']}.L.{field_name}"
            right_bit = f"{right.__dict__['name']}.L.{field_name}"
            node = mgr.and_(node, mgr.iff(mgr.var(left_bit), mgr.var(right_bit)))
        return node

    def _assign_constraint(
        self,
        source: Var,
        target: Var,
        resolver: VariableResolver,
        assigns: Dict[str, Expr],
    ) -> int:
        """``target`` equals ``source`` after the simultaneous assignment."""
        mgr = self._manager
        assigned_local_fields = set()
        assigned_global_fields = set()
        node = mgr.TRUE
        for name, expression in assigns.items():
            target_bit = resolver.bit_name(target, name)
            if resolver.is_global(name):
                assigned_global_fields.add(target_bit.rsplit(".", 1)[-1])
            else:
                assigned_local_fields.add(target_bit.rsplit(".", 1)[-1])
            if isinstance(expression, Nondet):
                # The target bit is left unconstrained: any value is allowed.
                continue
            value = compile_expr(expression, source, resolver, mgr, self._choices)
            node = mgr.and_(node, mgr.iff(mgr.var(target_bit), value))
        node = mgr.and_(node, self._locals_equal(source, target, assigned_local_fields))
        node = mgr.and_(node, self._globals_equal(source, target, assigned_global_fields))
        return node

    # ------------------------------------------------------------------
    # Template relations
    # ------------------------------------------------------------------
    def _encode_internal(self) -> int:
        mgr = self._manager
        x = self.state_var("x")
        v = self.state_var("v")
        disjuncts: List[int] = []
        for name, procedure in self.cfg.procedures.items():
            module = self.cfg.module_of(name)
            resolver = self._resolver(procedure)
            for edge in procedure.internal_edges:
                self._choices.reset()
                node = mgr.and_(self._at(x, module, edge.source), self._at(v, module, edge.target))
                if edge.guard is not None:
                    node = mgr.and_(node, compile_expr(edge.guard, x, resolver, mgr, self._choices))
                node = mgr.and_(node, self._assign_constraint(x, v, resolver, edge.assigns))
                disjuncts.append(self._choices.quantify(node))
        return mgr.disjoin(disjuncts)

    def _encode_into_call(self) -> int:
        mgr = self._manager
        x = self.state_var("x")
        y = self.state_var("y")
        disjuncts: List[int] = []
        for name, procedure in self.cfg.procedures.items():
            module = self.cfg.module_of(name)
            caller_resolver = self._resolver(procedure)
            for edge in procedure.call_edges:
                self._choices.reset()
                callee_cfg = self.cfg.procedure_cfg(edge.callee)
                callee_module = self.cfg.module_of(edge.callee)
                callee = self.cfg.program.procedure(edge.callee)
                node = mgr.and_(
                    self._at(x, module, edge.source), self._at(y, callee_module, callee_cfg.entry)
                )
                node = mgr.and_(node, self._globals_equal(x, y))
                param_fields = set()
                for param_name, argument in zip(callee.params, edge.args):
                    slot = callee_cfg.slot_of[param_name]
                    field_name = self.space.local_field(slot)
                    param_fields.add(field_name)
                    param_bit = f"y.L.{field_name}"
                    if isinstance(argument, Nondet):
                        continue
                    value = compile_expr(argument, x, caller_resolver, mgr, self._choices)
                    node = mgr.and_(node, mgr.iff(mgr.var(param_bit), value))
                # Non-parameter locals (including return registers and unused
                # slots) start the callee initialised to False.
                for field_name in self.space.locals_sort.field_names():
                    if field_name not in param_fields:
                        node = mgr.and_(node, mgr.nvar(f"y.L.{field_name}"))
                disjuncts.append(self._choices.quantify(node))
        return mgr.disjoin(disjuncts)

    def _encode_return(self) -> int:
        mgr = self._manager
        x = self.state_var("x")
        z = self.state_var("z")
        w = self.state_var("w")
        disjuncts: List[int] = []
        for name, procedure in self.cfg.procedures.items():
            module = self.cfg.module_of(name)
            caller_resolver = self._resolver(procedure)
            for edge in procedure.call_edges:
                callee_cfg = self.cfg.procedure_cfg(edge.callee)
                callee_module = self.cfg.module_of(edge.callee)
                node = mgr.conjoin(
                    [
                        self._at(x, module, edge.source),
                        self._at(z, callee_module, callee_cfg.exit),
                        self._at(w, module, edge.return_pc),
                    ]
                )
                assigned_local_fields = set()
                assigned_global_fields = set()
                for index, target_name in enumerate(edge.targets):
                    ret_slot = callee_cfg.slot_of[f"{RETURN_SLOT_PREFIX}{index}"]
                    ret_bit = f"z.L.{self.space.local_field(ret_slot)}"
                    target_bit = caller_resolver.bit_name(w, target_name)
                    if caller_resolver.is_global(target_name):
                        assigned_global_fields.add(target_bit.rsplit(".", 1)[-1])
                    else:
                        assigned_local_fields.add(target_bit.rsplit(".", 1)[-1])
                    node = mgr.and_(node, mgr.iff(mgr.var(target_bit), mgr.var(ret_bit)))
                node = mgr.and_(node, self._globals_equal(z, w, assigned_global_fields))
                node = mgr.and_(node, self._locals_equal(x, w, assigned_local_fields))
                disjuncts.append(node)
        return mgr.disjoin(disjuncts)

    def _encode_entry(self) -> int:
        return self._location_relation(lambda cfg: cfg.entry)

    def _encode_exit(self) -> int:
        return self._location_relation(lambda cfg: cfg.exit)

    def _location_relation(self, pick) -> int:
        mgr = self._manager
        mod = Var("mod", self.space.module_sort)
        pc = Var("pc", self.space.pc_sort)
        disjuncts = []
        for name, procedure in self.cfg.procedures.items():
            module = self.cfg.module_of(name)
            disjuncts.append(
                mgr.and_(
                    self._context.encode_cube(mod, module),
                    self._context.encode_cube(pc, pick(procedure)),
                )
            )
        return mgr.disjoin(disjuncts)

    def _encode_init(self) -> int:
        mgr = self._manager
        u = self.state_var("u")
        main_cfg = self.cfg.procedure_cfg(self.cfg.program.main)
        node = self._at(u, self.cfg.module_of(self.cfg.program.main), main_cfg.entry)
        # Deterministic initialisation: every variable starts False (programs
        # introduce nondeterminism explicitly with `x := *`).
        for field_name in self.space.locals_sort.field_names():
            node = mgr.and_(node, mgr.nvar(f"u.L.{field_name}"))
        for field_name in self.space.globals_sort.field_names():
            node = mgr.and_(node, mgr.nvar(f"u.G.{field_name}"))
        return node

    def _encode_target(self, locations: Sequence[Tuple[int, int]]) -> int:
        mgr = self._manager
        mod = Var("mod", self.space.module_sort)
        pc = Var("pc", self.space.pc_sort)
        return mgr.disjoin(
            mgr.and_(self._context.encode_cube(mod, module), self._context.encode_cube(pc, pc_value))
            for module, pc_value in locations
        )
