"""State sorts for the symbolic encoding of Boolean programs.

A program state (the paper's ``u``, ``v``, ... in Section 4) is the struct
``(mod, pc, L, G)``:

* ``mod`` — the module (procedure) the control is in,
* ``pc`` — the program counter inside that module,
* ``L`` — the local-variable slots (parameters, declared locals and the
  synthetic ``__ret_i`` return registers share a pool of *slots*; every module
  maps its own locals onto a prefix of the slots),
* ``G`` — the global variables (for concurrent programs: the shared globals
  followed by each thread's private globals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..fixedpoint import BOOL, EnumSort, StructSort

__all__ = ["StateSpace"]


@dataclass
class StateSpace:
    """Sorts describing the state space of a (possibly multi-thread) program."""

    module_sort: EnumSort
    pc_sort: EnumSort
    locals_sort: StructSort
    globals_sort: StructSort
    state_sort: StructSort
    global_names: List[str]
    num_slots: int

    @classmethod
    def build(
        cls,
        num_modules: int,
        max_pc: int,
        num_slots: int,
        global_names: Sequence[str],
    ) -> "StateSpace":
        """Construct the sorts for a program with the given dimensions."""
        module_sort = EnumSort("Module", max(1, num_modules))
        pc_sort = EnumSort("PC", max(2, max_pc))
        slot_fields = [(f"l{i}", BOOL) for i in range(num_slots)] or [("l0", BOOL)]
        locals_sort = StructSort("Locals", slot_fields)
        global_fields = [(name, BOOL) for name in global_names] or [("__noglobals", BOOL)]
        globals_sort = StructSort("Globals", global_fields)
        state_sort = StructSort(
            "State",
            [
                ("mod", module_sort),
                ("pc", pc_sort),
                ("L", locals_sort),
                ("G", globals_sort),
            ],
        )
        return cls(
            module_sort=module_sort,
            pc_sort=pc_sort,
            locals_sort=locals_sort,
            globals_sort=globals_sort,
            state_sort=state_sort,
            global_names=list(global_names),
            num_slots=max(1, num_slots),
        )

    def local_field(self, slot: int) -> str:
        """Name of the locals-struct field for a slot index."""
        if not 0 <= slot < self.locals_sort.width:
            raise IndexError(f"local slot {slot} out of range")
        return f"l{slot}"

    def global_field(self, name: str) -> str:
        """Name of the globals-struct field for a global variable."""
        if name not in self.global_names and self.globals_sort.has_field(name):
            return name
        if name not in self.global_names:
            raise KeyError(f"unknown global variable {name!r}")
        return name

    @property
    def state_bits(self) -> int:
        """Number of Boolean components of one program state."""
        return self.state_sort.width
