"""BDD variable-allocation hints derived from the program text.

Getafix hands MUCKE a set of allocation constraints computed by "a simple
algorithm which looks at the assignments in the program, and tries to allocate
the variables involved in the assignment together" (Section 6.1) — the same
heuristic used by BEBOP and MOPED v1.  This module reproduces that heuristic:
it measures how often two program variables occur in the same assignment (or
guard) and produces an ordering of the *globals-struct fields* in which highly
related variables are adjacent.  The orderer in
:mod:`repro.fixedpoint.symbolic` then interleaves the state copies, so related
bits of every copy end up close together.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from ..bdd import order_from_affinity
from ..boolprog.ast import (
    Assert,
    Assign,
    Assume,
    Call,
    CallAssign,
    If,
    Program,
    Return,
    Stmt,
    While,
)

__all__ = ["affinity_order", "variable_affinities"]


def variable_affinities(program: Program) -> Dict[Tuple[str, str], int]:
    """Count how often two variables appear together in a statement."""
    counts: Dict[Tuple[str, str], int] = {}

    def bump(names: List[str]) -> None:
        for left, right in combinations(sorted(set(names)), 2):
            counts[(left, right)] = counts.get((left, right), 0) + 1

    def statement_vars(statement: Stmt) -> List[str]:
        if isinstance(statement, Assign):
            names = list(statement.targets)
            for expression in statement.values:
                names.extend(expression.variables())
            return names
        if isinstance(statement, CallAssign):
            names = list(statement.targets)
            for expression in statement.args:
                names.extend(expression.variables())
            return names
        if isinstance(statement, Call):
            names = []
            for expression in statement.args:
                names.extend(expression.variables())
            return names
        if isinstance(statement, Return):
            names = []
            for expression in statement.values:
                names.extend(expression.variables())
            return names
        if isinstance(statement, (Assert, Assume)):
            return list(statement.condition.variables())
        if isinstance(statement, (If, While)):
            return list(statement.condition.variables())
        return []

    def walk(statements: List[Stmt]) -> None:
        for statement in statements:
            bump(statement_vars(statement))
            if isinstance(statement, If):
                walk(statement.then_branch)
                walk(statement.else_branch)
            elif isinstance(statement, While):
                walk(statement.body)

    for procedure in program.procedures.values():
        walk(procedure.body)
    return counts


def affinity_order(program: Program) -> List[str]:
    """Order the program's global variables so related globals are adjacent."""
    affinities = variable_affinities(program)
    global_names = list(program.globals)
    relevant = {
        pair: weight
        for pair, weight in affinities.items()
        if pair[0] in global_names and pair[1] in global_names
    }
    return order_from_affinity(global_names, relevant)
