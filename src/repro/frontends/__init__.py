"""Tool front ends: the GETAFIX checker API and command-line interface."""

from .getafix import (
    check_concurrent_reachability,
    check_reachability,
    resolve_target,
    resolve_target_locations,
)
from .cli import build_arg_parser, main

__all__ = [
    "check_concurrent_reachability",
    "check_reachability",
    "resolve_target",
    "resolve_target_locations",
    "build_arg_parser",
    "main",
]
