"""GETAFIX: the user-facing reachability checker.

The front end accepts program source text (or already-parsed programs), a
friendly target specification and an algorithm name, and returns a
:class:`~repro.algorithms.ReachabilityResult`.  Targets can be given as:

* ``"error"`` — any assertion-failure location (the error location of every
  procedure containing an ``assert``),
* ``"proc:label"`` — a labelled statement of a procedure (for concurrent
  programs: ``"thread:proc:label"``),
* an explicit list of ``(module, pc)`` pairs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms import ReachabilityResult, run_concurrent, run_sequential
from ..algorithms.engine import SEQUENTIAL_ALGORITHMS
from ..analysis.passes import normalise_slice_targets
from ..limits import ResourceLimits
from ..boolprog import (
    ConcurrentProgram,
    Program,
    build_cfg,
    parse_concurrent_program,
    parse_program,
)
from ..encode.concurrent import ConcurrentEncoder

__all__ = [
    "check_reachability",
    "check_concurrent_reachability",
    "resolve_target",
    "resolve_target_locations",
]

TargetSpec = Union[str, Sequence[Tuple[int, int]], Sequence[str]]


def _as_program(program: Union[str, Program]) -> Program:
    if isinstance(program, Program):
        return program
    return parse_program(program)


def _as_concurrent(program: Union[str, ConcurrentProgram]) -> ConcurrentProgram:
    if isinstance(program, ConcurrentProgram):
        return program
    return parse_concurrent_program(program)


def resolve_target(program: Program, target: TargetSpec) -> List[Tuple[int, int]]:
    """Turn a friendly target specification into (module, pc) pairs."""
    return resolve_target_locations(build_cfg(program), target)


def resolve_target_locations(cfg, target: TargetSpec) -> List[Tuple[int, int]]:
    """Resolve a target spec against an already-built :class:`ProgramCfg`.

    Sessions resolve many targets against one program; taking the CFG
    directly avoids rebuilding it per query (see
    :class:`repro.api.AnalysisSession`).
    """
    if isinstance(target, str):
        targets: List[str] = [target]
    elif target and isinstance(target[0], str):
        targets = list(target)  # type: ignore[arg-type]
    else:
        return [tuple(location) for location in target]  # type: ignore[list-item]
    locations: List[Tuple[int, int]] = []
    for item in targets:
        if item == "error":
            locations.extend(cfg.error_locations())
            continue
        if ":" not in item:
            raise ValueError(
                f"target {item!r} is neither 'error' nor of the form 'procedure:label'"
            )
        procedure, label = item.split(":", 1)
        locations.append(cfg.label_location(procedure, label))
    if not locations:
        raise ValueError(f"target specification {target!r} matched no program location")
    return locations


def _resolve_concurrent_target(
    program: ConcurrentProgram, target: TargetSpec
) -> List[Tuple[int, int]]:
    encoder = ConcurrentEncoder(program)
    if isinstance(target, str):
        targets: List[str] = [target]
    elif target and isinstance(target[0], str):
        targets = list(target)  # type: ignore[arg-type]
    else:
        return [tuple(location) for location in target]  # type: ignore[list-item]
    locations: List[Tuple[int, int]] = []
    for item in targets:
        if item == "error":
            locations.extend(encoder.error_locations())
            continue
        parts = item.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"concurrent target {item!r} must be 'error' or 'thread:procedure:label'"
            )
        locations.append(encoder.label_location(*parts))
    if not locations:
        raise ValueError(f"target specification {target!r} matched no program location")
    return locations


def check_reachability(
    program: Union[str, Program],
    target: TargetSpec = "error",
    algorithm: str = "ef-opt",
    early_stop: bool = True,
    limits: Optional[ResourceLimits] = None,
    optimize: int = 0,
    witness: bool = False,
) -> ReachabilityResult:
    """Answer "is the target statement reachable?" for a sequential program.

    ``algorithm`` is one of ``"summary"``, ``"ef"`` or ``"ef-opt"`` (the three
    fixed-point formulations of Section 4, in increasing order of efficiency).
    ``limits`` is an optional :class:`~repro.limits.ResourceLimits` envelope;
    see :func:`repro.algorithms.run_sequential` for its exhaustion and
    degradation semantics.  ``optimize`` runs the static pre-analysis
    pipeline (:mod:`repro.analysis`) before encoding: level 1 is pc-stable,
    level 2 additionally prunes/slices — with a string target spec the
    query is routed through a session that resolves the spec against the
    *optimized* CFG (and slices towards it); an explicit ``(module, pc)``
    list pins the raw numbering, capping the level at 1.

    With ``witness`` a reachable verdict additionally carries a
    replay-validated counterexample trace in ``result.witness`` (the
    :class:`~repro.witness.WitnessTrace` JSON shape); extraction runs as a
    post-pass on the session's retained summary and never changes the
    verdict — if the trace fails its explicit-semantics replay, the typed
    error is recorded under ``details["witness_error"]`` and ``witness``
    stays None.
    """
    if algorithm not in SEQUENTIAL_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(SEQUENTIAL_ALGORITHMS)}"
        )
    parsed = _as_program(program)
    optimize = int(optimize)
    if optimize > 0 or witness:
        # Imported lazily: repro.api builds on this front end's resolvers.
        from ..api.session import AnalysisSession

        specs = normalise_slice_targets(target)
        if specs is None:
            optimize = min(optimize, 1)
        session = AnalysisSession(
            parsed,
            default_algorithm=algorithm,
            limits=limits,
            optimize=optimize,
            slice_targets=specs if optimize >= 2 else None,
        )
        try:
            result = session.check(target, algorithm=algorithm, early_stop=early_stop)
            if witness and result.reachable:
                from ..witness import WitnessError

                try:
                    trace = session.explain(target, algorithm=algorithm)
                except WitnessError as exc:
                    result.details["witness_error"] = f"{type(exc).__name__}: {exc}"
                else:
                    result.witness = trace.to_dict() if trace is not None else None
            return result
        finally:
            session.close()
    locations = resolve_target(parsed, target)
    return run_sequential(
        parsed, locations, algorithm=algorithm, early_stop=early_stop, limits=limits
    )


def check_concurrent_reachability(
    program: Union[str, ConcurrentProgram],
    target: TargetSpec = "error",
    context_switches: int = 2,
    early_stop: bool = True,
    count_states: bool = False,
    limits: Optional[ResourceLimits] = None,
) -> ReachabilityResult:
    """Bounded context-switching reachability for a concurrent program."""
    parsed = _as_concurrent(program)
    locations = _resolve_concurrent_target(parsed, target)
    return run_concurrent(
        parsed,
        locations,
        context_switches=context_switches,
        early_stop=early_stop,
        count_states=count_states,
        limits=limits,
    )
