"""The analysis daemon's command line: ``python -m repro.frontends.server``.

Starts an :class:`repro.service.AnalysisDaemon` speaking JSON Lines — one
request object per line in, one response object per line out — over stdin
(``--stdio``, the default) or a TCP socket (``--port``).  See the README's
"Running the service" section for the protocol; the short version:

.. code-block:: console

   $ echo '{"op": "query", "program": "...", "target": "error"}' \\
       | python -m repro.frontends.server --stdio --workers 2

Flag validation follows the ``getafix`` CLI conventions: invalid values
exit with status 2 and a one-line message on stderr, never a traceback.
SIGTERM and SIGINT trigger a graceful drain (stop admitting, finish
in-flight queries, stop the worker pool).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from ..limits import ResourceLimits

EXIT_OK = 0
EXIT_ERROR = 2


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description=(
            "Long-running reachability-analysis daemon: JSONL requests over "
            "stdin or TCP, answered from a pool of warm analysis sessions."
        ),
    )
    transport = parser.add_argument_group("transport")
    transport.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSONL over stdin/stdout (default when --port is not given)",
    )
    transport.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port (default: 127.0.0.1)",
    )
    transport.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve JSONL over TCP on this port (0 = ephemeral)",
    )
    pool = parser.add_argument_group("session pool")
    pool.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes (0 = in-process fallback; default: 2)",
    )
    pool.add_argument(
        "--memory-budget",
        type=int,
        default=500_000,
        metavar="NODES",
        help="live-BDD-node budget for the session pool; least-recently-used "
        "sessions are evicted past it (0 = unbounded; default: 500000)",
    )
    admission = parser.add_argument_group("admission control")
    admission.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="hard cap on admitted-but-unfinished queries; past it requests "
        "are rejected with a typed 'shed' response (default: 64)",
    )
    admission.add_argument(
        "--shed-threshold",
        type=int,
        default=16,
        metavar="N",
        help="soft overload mark: past it queries are shed to the cheaper "
        "algorithm on the degradation ladder (default: 16)",
    )
    breaker = parser.add_argument_group("circuit breaker")
    breaker.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive crashed/timeout/resource outcomes before a program "
        "hash is quarantined (default: 3)",
    )
    breaker.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="quarantine duration before a half-open probe (default: 30)",
    )
    limits = parser.add_argument_group(
        "default resource limits", "per-request fields override these"
    )
    limits.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-query wall-clock deadline",
    )
    limits.add_argument(
        "--node-budget", type=int, default=None, metavar="N",
        help="default per-query live-BDD-node cap",
    )
    limits.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="default per-query fixed-point iteration budget",
    )
    limits.add_argument(
        "--degrade",
        action="store_true",
        help="on exhaustion, retry once with the cheaper ladder algorithm",
    )
    parser.add_argument(
        "--algorithm",
        default="ef-opt",
        choices=["summary", "ef", "ef-opt"],
        help="default sequential algorithm (default: ef-opt)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="grace period for in-flight queries on shutdown (default: 10)",
    )
    return parser


def _validate(args: argparse.Namespace) -> Optional[str]:
    """First offending flag as a message, or None when everything is sane."""
    if args.workers < 0:
        return f"--workers must be >= 0, got {args.workers}"
    if args.memory_budget < 0:
        return f"--memory-budget must be >= 0, got {args.memory_budget}"
    if args.max_pending < 1:
        return f"--max-pending must be >= 1, got {args.max_pending}"
    if args.shed_threshold < 1:
        return f"--shed-threshold must be >= 1, got {args.shed_threshold}"
    if args.shed_threshold > args.max_pending:
        return (
            f"--shed-threshold ({args.shed_threshold}) must not exceed "
            f"--max-pending ({args.max_pending})"
        )
    if args.breaker_threshold < 1:
        return f"--breaker-threshold must be >= 1, got {args.breaker_threshold}"
    if args.breaker_cooldown < 0:
        return f"--breaker-cooldown must be >= 0, got {args.breaker_cooldown}"
    if args.deadline is not None and args.deadline < 0:
        return f"--deadline must be >= 0, got {args.deadline}"
    if args.node_budget is not None and args.node_budget < 1:
        return f"--node-budget must be >= 1, got {args.node_budget}"
    if args.max_iterations is not None and args.max_iterations < 1:
        return f"--max-iterations must be >= 1, got {args.max_iterations}"
    if args.drain_timeout < 0:
        return f"--drain-timeout must be >= 0, got {args.drain_timeout}"
    if args.port is not None and not (0 <= args.port <= 65535):
        return f"--port must be in [0, 65535], got {args.port}"
    return None


def build_config(args: argparse.Namespace):
    """A :class:`repro.service.DaemonConfig` from validated arguments."""
    from ..service import DaemonConfig

    default_limits = None
    if (
        args.deadline is not None
        or args.node_budget is not None
        or args.max_iterations is not None
        or args.degrade
    ):
        default_limits = ResourceLimits(
            deadline_seconds=args.deadline,
            node_budget=args.node_budget,
            max_iterations=args.max_iterations,
            degrade=args.degrade,
        )
    return DaemonConfig(
        workers=args.workers,
        memory_budget_nodes=args.memory_budget or None,
        max_pending=args.max_pending,
        shed_threshold=args.shed_threshold,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        default_algorithm=args.algorithm,
        default_limits=default_limits,
        drain_timeout=args.drain_timeout,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    message = _validate(args)
    if message is not None:
        print(f"repro-server: {message}", file=sys.stderr)
        return EXIT_ERROR
    try:
        config = build_config(args)
    except ValueError as exc:
        print(f"repro-server: {exc}", file=sys.stderr)
        return EXIT_ERROR

    from ..service import AnalysisDaemon, serve_stdio, serve_tcp

    daemon = AnalysisDaemon(config)
    try:
        if args.port is not None and not args.stdio:
            asyncio.run(serve_tcp(daemon, host=args.host, port=args.port))
        else:
            asyncio.run(serve_stdio(daemon))
    except KeyboardInterrupt:
        pass
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
