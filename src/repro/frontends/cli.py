"""Command-line interface: ``getafix <file> [--target ...] [--algorithm ...]``."""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

from .getafix import check_concurrent_reachability, check_reachability

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``getafix`` command."""
    parser = argparse.ArgumentParser(
        prog="getafix",
        description=(
            "Reachability checker for recursive Boolean programs, implemented as "
            "fixed-point formulas evaluated by a symbolic (BDD) solver."
        ),
    )
    parser.add_argument("file", type=Path, help="Boolean program source file")
    parser.add_argument(
        "--target",
        default="error",
        help="'error', 'proc:label' (sequential) or 'thread:proc:label' (concurrent)",
    )
    parser.add_argument(
        "--algorithm",
        default="ef-opt",
        choices=["summary", "ef", "ef-opt"],
        help="sequential reachability algorithm (ignored with --concurrent)",
    )
    parser.add_argument(
        "--concurrent",
        action="store_true",
        help="treat the input as a concurrent program and use the bounded "
        "context-switching algorithm",
    )
    parser.add_argument(
        "--context-switches",
        type=int,
        default=2,
        help="context-switch bound for --concurrent (default: 2)",
    )
    parser.add_argument(
        "--no-early-stop",
        action="store_true",
        help="disable early termination when the target is found reachable",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``getafix`` command; returns the exit status."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    source = args.file.read_text()
    if args.concurrent:
        result = check_concurrent_reachability(
            source,
            target=args.target,
            context_switches=args.context_switches,
            early_stop=not args.no_early_stop,
        )
    else:
        result = check_reachability(
            source,
            target=args.target,
            algorithm=args.algorithm,
            early_stop=not args.no_early_stop,
        )
    if args.json:
        print(json.dumps(asdict(result), indent=2, default=str))
    else:
        answer = "YES: the target is reachable" if result.reachable else "NO: the target is unreachable"
        print(answer)
        print(
            f"algorithm={result.algorithm} iterations={result.iterations} "
            f"summary-BDD-nodes={result.summary_nodes} time={result.total_seconds:.3f}s"
        )
    return 0 if not result.reachable else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
