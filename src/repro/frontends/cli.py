"""Command-line interface: ``getafix <file>... [--target ...] [--jobs N]``.

Exit codes follow the grep convention so scripts can tell the three outcomes
apart without parsing output:

* ``0`` — every query answered NO (target unreachable),
* ``1`` — at least one query answered YES (target reachable),
* ``2`` — usage, I/O, parse or static-semantics error (message on stderr),
* ``3`` — a resource envelope was exhausted (``--deadline``, ``--node-budget``,
  ``--max-iterations`` or a ``--shard-timeout``) before an answer was found.

A single file with a single target runs in-process and prints the classic
one-result summary.  Several files and/or several ``--target`` options form
a *batch*: every (file, target) pair becomes one query, fanned out over
``--jobs`` worker processes (each with a private BDD manager; see
:mod:`repro.parallel`), and the merged table reports per-shard kernel/GC
statistics plus the batch speedup.  Queries on the same file with the same
algorithm share ONE analysis session per shard (validate/encode/solve once,
answer every target as a post-pass; see :mod:`repro.api`), so
``getafix prog.bp --target a --target b --target c`` compiles ``prog.bp``
exactly once; the ``reuse`` column / ``reused_solve`` JSON field records
which queries rode the shared solve.

``getafix lint <file>...`` (the ``lint`` subcommand) runs the static
pre-analysis in reporting mode instead of checking reachability: structured
JSON diagnostics on stdout, exit 0 when clean, 1 with findings, 2 on errors
(see :mod:`repro.analysis.lint`).  ``-O/--optimize {0,1,2}`` runs the same
machinery in rewriting mode before encoding (see :mod:`repro.analysis`).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

from ..boolprog import BoolProgError, parse_concurrent_program, parse_program
from ..errors import ResourceExhausted
from ..limits import ResourceLimits
from .getafix import (
    _resolve_concurrent_target,
    check_concurrent_reachability,
    check_reachability,
    resolve_target,
)

__all__ = ["main", "build_arg_parser", "run_lint"]

#: Exit statuses (grep convention).
EXIT_UNREACHABLE = 0
EXIT_REACHABLE = 1
EXIT_ERROR = 2
EXIT_RESOURCE = 3


def build_arg_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``getafix`` command."""
    parser = argparse.ArgumentParser(
        prog="getafix",
        description=(
            "Reachability checker for recursive Boolean programs, implemented as "
            "fixed-point formulas evaluated by a symbolic (BDD) solver."
        ),
    )
    parser.add_argument(
        "files",
        type=Path,
        nargs="+",
        metavar="file",
        help="Boolean program source file(s); several files form a batch",
    )
    parser.add_argument(
        "--target",
        action="append",
        dest="targets",
        metavar="TARGET",
        help="'error', 'proc:label' (sequential) or 'thread:proc:label' "
        "(concurrent); repeatable — each target is checked against every file "
        "(default: error)",
    )
    parser.add_argument(
        "--algorithm",
        default="ef-opt",
        choices=["summary", "ef", "ef-opt"],
        help="sequential reachability algorithm (ignored with --concurrent)",
    )
    parser.add_argument(
        "--concurrent",
        action="store_true",
        help="treat the input as a concurrent program and use the bounded "
        "context-switching algorithm",
    )
    parser.add_argument(
        "--context-switches",
        type=int,
        default=2,
        help="context-switch bound for --concurrent (default: 2)",
    )
    parser.add_argument(
        "--no-early-stop",
        action="store_true",
        help="disable early termination when the target is found reachable",
    )
    parser.add_argument(
        "--witness",
        action="store_true",
        help="extract a replay-validated counterexample trace for every "
        "reachable verdict (sequential algorithms only; with --json the "
        "trace rides in the result's 'witness' field)",
    )
    parser.add_argument(
        "-O",
        "--optimize",
        type=int,
        default=0,
        choices=[0, 1, 2],
        metavar="LEVEL",
        help="static pre-analysis before encoding: 1 = liveness/constants "
        "(pc-stable), 2 = plus branch pruning, target-directed slicing and "
        "unreachable-procedure removal (default: 0; not valid with "
        "--concurrent)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for batch invocations; each query gets its own "
        "BDD manager (default: 1 = sequential)",
    )
    parser.add_argument(
        "--no-group",
        action="store_true",
        help="disable per-program session grouping: every (file, target) pair "
        "gets its own shard and solve (restores the strict one-query-per-shard "
        "fan-out, e.g. to parallelise many targets on one file across --jobs)",
    )
    limits = parser.add_argument_group(
        "resource limits",
        "bound what a query may consume; exhaustion exits with status 3 "
        "instead of hanging or dying on an opaque MemoryError",
    )
    limits.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query wall-clock deadline, enforced cooperatively inside "
        "the BDD kernel (0 trips on the first allocation)",
    )
    limits.add_argument(
        "--node-budget",
        type=int,
        default=None,
        metavar="N",
        help="cap on live BDD nodes per query; exceeding it raises a typed "
        "error after a last-chance garbage collection",
    )
    limits.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="fixed-point iteration budget per query (default: engine default)",
    )
    limits.add_argument(
        "--degrade",
        action="store_true",
        help="on exhaustion, retry the query once with a cheaper algorithm "
        "(ef-opt/ef -> summary); the result records degraded_from",
    )
    limits.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="driver-side timeout per pooled shard group; a stuck worker is "
        "abandoned, its pool rebuilt, and its queries marked timeout",
    )
    limits.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="pool-rebuild retries for shards whose worker crashed "
        "(default: 2; completed shard results are always preserved)",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    return parser


def _validate_flags(args: argparse.Namespace) -> Optional[str]:
    """First nonsensical flag value as a message, or None when all are sane.

    Caught before any file I/O or parsing so a bad invocation fails fast
    with exit status 2 and a message naming the flag — argparse's ``type=``
    converters accept any int/float, so range checks live here.
    """
    if args.jobs < 1:
        return f"--jobs must be >= 1, got {args.jobs}"
    if args.deadline is not None and args.deadline < 0:
        return f"--deadline must be >= 0 seconds, got {args.deadline}"
    if args.node_budget is not None and args.node_budget < 1:
        return f"--node-budget must be >= 1, got {args.node_budget}"
    if args.max_iterations is not None and args.max_iterations < 1:
        return f"--max-iterations must be >= 1, got {args.max_iterations}"
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        return f"--shard-timeout must be > 0 seconds, got {args.shard_timeout}"
    if args.retries < 0:
        return f"--retries must be >= 0, got {args.retries}"
    if args.context_switches < 0:
        return f"--context-switches must be >= 0, got {args.context_switches}"
    if args.concurrent and args.optimize:
        return (
            "--optimize applies to sequential programs only; the concurrent "
            "engine has no pre-analysis pipeline"
        )
    if args.concurrent and args.witness:
        return (
            "--witness applies to sequential programs only; the bounded "
            "context-switching engine has no trace extraction"
        )
    return None


def _build_limits(args: argparse.Namespace) -> Optional[ResourceLimits]:
    """Fold the limit flags into a :class:`ResourceLimits`, or None if unset."""
    if (
        args.deadline is None
        and args.node_budget is None
        and args.max_iterations is None
        and not args.degrade
    ):
        return None
    return ResourceLimits(
        deadline_seconds=args.deadline,
        node_budget=args.node_budget,
        max_iterations=args.max_iterations,
        degrade=args.degrade,
    )


def _prepare_queries(args: argparse.Namespace, sources: List[str]) -> Optional[List[tuple]]:
    """Parse every file and resolve every target, front-loading user errors.

    Returns ``[(path, program, {target label: locations}), ...]`` or None
    after printing a diagnostic — parse and target-resolution failures are
    *user* errors and are caught here, narrowly, so a ValueError/KeyError
    escaping the engine later is a genuine bug and keeps its traceback.
    """
    prepared = []
    for path, source in zip(args.files, sources):
        try:
            if args.concurrent:
                program = parse_concurrent_program(source)
                resolved = {
                    target: _resolve_concurrent_target(program, target)
                    for target in args.targets
                }
            else:
                program = parse_program(source)
                resolved = {
                    target: resolve_target(program, target) for target in args.targets
                }
        except (BoolProgError, ValueError) as exc:
            print(f"getafix: {path}: {exc}", file=sys.stderr)
            return None
        except KeyError as exc:  # unknown procedure/label in a target spec
            location = exc.args[0] if exc.args else exc
            print(f"getafix: {path}: unknown target location: {location}", file=sys.stderr)
            return None
        prepared.append((path, program, resolved))
    return prepared


def _run_single(
    args: argparse.Namespace,
    program: object,
    target: str,
    locations: List[tuple],
    limits: Optional[ResourceLimits],
) -> int:
    """Classic single-query path: one file, one target, in-process.

    Transient-failure parity with the batch path: an unexpected exception
    gets one bounded-backoff retry (batches get the same through the pool
    scheduler's rebuild-and-retry rounds), recorded in the result's
    ``details["retries"]``.  Typed resource exhaustion and user errors are
    never retried — a deterministic engine will only fail the same way
    twice.
    """
    import time as _time

    from ..testing import faults

    label = str(args.files[0])
    retries = 0
    while True:
        try:
            # Same fault-injection point the shard workers have, so the
            # retry path is testable with a deterministic transient fault.
            faults.on_shard([label])
            if args.concurrent:
                result = check_concurrent_reachability(
                    program,
                    target=locations,
                    context_switches=args.context_switches,
                    early_stop=not args.no_early_stop,
                    limits=limits,
                )
            else:
                # When optimizing, hand the friendly spec through so the
                # level-2 pipeline may slice towards it and resolve it
                # against the *optimized* CFG; the pre-resolved numeric
                # locations would pin the raw numbering (capping at -O1).
                result = check_reachability(
                    program,
                    target=target if args.optimize else locations,
                    algorithm=args.algorithm,
                    early_stop=not args.no_early_stop,
                    limits=limits,
                    optimize=args.optimize,
                    witness=args.witness,
                )
            break
        except ResourceExhausted as exc:
            if args.json:
                print(json.dumps({"error": str(exc), **exc.detail()}, indent=2))
            else:
                print(f"getafix: {label}: {exc}", file=sys.stderr)
            return EXIT_RESOURCE
        except BoolProgError:
            raise  # user error; main() renders it
        except Exception:  # noqa: BLE001 — transient failure: retry once
            if retries >= 1:
                raise
            retries += 1
            _time.sleep(0.05)
    if retries:
        result.details["retries"] = retries
    if args.json:
        print(json.dumps(asdict(result), indent=2, default=str))
    else:
        answer = "YES: the target is reachable" if result.reachable else "NO: the target is unreachable"
        print(answer)
        if retries:
            print(f"note: succeeded after {retries} retry(ies) of a transient failure")
        if result.degraded_from is not None:
            print(
                f"note: {result.degraded_from} exhausted its budget; "
                f"answer comes from the {result.algorithm} fallback"
            )
        print(
            f"algorithm={result.algorithm} iterations={result.iterations} "
            f"summary-BDD-nodes={result.summary_nodes} time={result.total_seconds:.3f}s"
        )
        if result.witness is not None:
            steps = result.witness["steps"]
            print(f"witness trace ({len(steps)} steps, replay-validated):")
            for index, step in enumerate(steps):
                values = {**step["locals"], **step["globals"]}
                shown = " ".join(
                    f"{name}={'1' if value else '0'}" for name, value in values.items()
                )
                print(
                    f"  {index:3d}  {step['kind']:<8s} "
                    f"{step['procedure']}:{step['pc']:<4d} {step['statement']}"
                    + (f"  [{shown}]" if shown else "")
                )
        elif args.witness and result.reachable:
            error = result.details.get("witness_error")
            if error:
                print(f"note: witness extraction failed: {error}", file=sys.stderr)
    return EXIT_REACHABLE if result.reachable else EXIT_UNREACHABLE


def _run_batch(
    args: argparse.Namespace,
    prepared: List[tuple],
    limits: Optional[ResourceLimits],
) -> int:
    """Batch path: every (file, target) pair is one shard."""
    from ..algorithms import run_batch
    from ..parallel import BatchQuery

    # Basenames are friendlier row labels, but two files with the same name
    # in different directories must not collide (verdicts are keyed by name).
    basenames = [path.name for path, _, _ in prepared]
    ambiguous = len(set(basenames)) != len(basenames)
    queries = []
    for path, program, resolved in prepared:
        label = str(path) if ambiguous else path.name
        for target, locations in resolved.items():
            name = f"{label}:{target}" if len(resolved) > 1 else label
            queries.append(
                BatchQuery(
                    name=name,
                    program=program,
                    # Friendly specs when optimizing (workers re-resolve
                    # against the optimized CFG); raw locations otherwise.
                    target=target if args.optimize else locations,
                    algorithm=args.algorithm,
                    concurrent=args.concurrent,
                    context_switches=args.context_switches,
                    early_stop=not args.no_early_stop,
                    optimize=args.optimize,
                    witness=args.witness,
                )
            )
    report = run_batch(
        queries,
        jobs=args.jobs,
        group_by_program=not args.no_group,
        limits=limits,
        shard_timeout=args.shard_timeout,
        max_retries=args.retries,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "mode": report.mode,
                    "jobs": report.jobs,
                    "wall_seconds": report.wall_seconds,
                    "shard_seconds": report.shard_seconds,
                    "speedup": report.speedup,
                    "queries_per_solve": report.queries_per_solve,
                    "reused_solves": report.reused_count,
                    "shards": report.rows(),
                },
                indent=2,
                default=str,
            )
        )
    else:
        print(report.format_table())
    failures = report.failures()
    if failures:
        for shard in failures:
            print(f"getafix: {shard.name}: {shard.error}", file=sys.stderr)
        # Genuine errors (crashes, parse failures) outrank resource
        # exhaustion: only a batch whose every failure is a budget or
        # timeout hit gets the distinguishable status 3.
        if all(shard.status in ("timeout", "resource") for shard in failures):
            return EXIT_RESOURCE
        return EXIT_ERROR
    return EXIT_REACHABLE if report.any_reachable else EXIT_UNREACHABLE


def run_lint(argv: List[str]) -> int:
    """``getafix lint <file>...`` — static diagnostics as JSON.

    Always emits JSON (one record per file: ``file``, ``clean``,
    ``findings``) so the output is scriptable without a flag.  Exit status:
    0 when every file is clean, 1 when any file has findings, 2 on usage,
    I/O, parse or static-semantics errors — deliberately the same shape as
    the checker's reachable/unreachable/error convention.
    """
    parser = argparse.ArgumentParser(
        prog="getafix lint",
        description=(
            "Static pre-analysis diagnostics for Boolean programs: "
            "unreachable procedures and statements, dead variables and "
            "writes, assume(F), constant and always-false conditions."
        ),
    )
    parser.add_argument(
        "files",
        type=Path,
        nargs="+",
        metavar="file",
        help="Boolean program source file(s) to lint",
    )
    args = parser.parse_args(argv)
    from ..analysis import lint_program

    records = []
    any_findings = False
    for path in args.files:
        try:
            source = path.read_text()
        except OSError as exc:
            print(f"getafix: cannot read input: {exc}", file=sys.stderr)
            return EXIT_ERROR
        try:
            findings = lint_program(source, name=str(path))
        except BoolProgError as exc:
            print(f"getafix: {path}: {exc}", file=sys.stderr)
            return EXIT_ERROR
        any_findings = any_findings or bool(findings)
        records.append(
            {
                "file": str(path),
                "clean": not findings,
                "findings": [finding.to_dict() for finding in findings],
            }
        )
    print(json.dumps(records, indent=2))
    return EXIT_REACHABLE if any_findings else EXIT_UNREACHABLE


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``getafix`` command; returns the exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return run_lint(argv[1:])
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if not args.targets:
        args.targets = ["error"]
    flag_error = _validate_flags(args)
    if flag_error is not None:
        print(f"getafix: {flag_error}", file=sys.stderr)
        return EXIT_ERROR
    try:
        limits = _build_limits(args)
    except ValueError as exc:
        print(f"getafix: {exc}", file=sys.stderr)
        return EXIT_ERROR
    # Repeating the same --target twice would only duplicate shards.
    args.targets = list(dict.fromkeys(args.targets))
    try:
        sources = [path.read_text() for path in args.files]
    except OSError as exc:
        print(f"getafix: cannot read input: {exc}", file=sys.stderr)
        return EXIT_ERROR
    prepared = _prepare_queries(args, sources)
    if prepared is None:
        return EXIT_ERROR
    try:
        if len(prepared) == 1 and len(args.targets) == 1 and args.jobs == 1:
            path, program, resolved = prepared[0]
            target = args.targets[0]
            return _run_single(args, program, target, resolved[target], limits)
        return _run_batch(args, prepared, limits)
    except BoolProgError as exc:
        # Static-semantics errors surface when the engine validates the
        # program; they are user errors, unlike any other engine exception.
        print(f"getafix: {args.files[0]}: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
