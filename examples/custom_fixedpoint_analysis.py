#!/usr/bin/env python3
"""Writing a *new* analysis directly in the fixed-point calculus.

The paper's thesis is that the fixed-point calculus is a programming language
for model-checking algorithms: new analyses are a handful of equations rather
than thousands of lines of BDD code.  This example demonstrates that by
implementing, in a few lines each:

1. plain transition-system reachability (the introductory example of
   Section 3) for a little mutual-exclusion protocol, and
2. a custom interprocedural analysis on a Boolean program — "which procedures
   can be *active* (on the call stack) when the target statement executes?" —
   built by adding one extra equation on top of the entry-forward summaries.

Run with::

    python examples/custom_fixedpoint_analysis.py
"""

from repro.boolprog import build_cfg, parse_program
from repro.encode import SequentialEncoder
from repro.fixedpoint import (
    BOOL,
    And,
    Eq,
    Equation,
    EquationSystem,
    Exists,
    Or,
    RelationDecl,
    StructSort,
    SymbolicBackend,
    Var,
    evaluate_nested,
)
from repro.algorithms.entry_forward import build as build_ef


def mutual_exclusion_reachability() -> None:
    """Section 3's one-line reachability formula, applied to a mutex protocol."""
    print("== 1. Plain symbolic reachability written as one equation ==")
    state_sort = StructSort(
        "MutexState",
        [("want0", BOOL), ("want1", BOOL), ("crit0", BOOL), ("crit1", BOOL)],
    )
    Reach = RelationDecl("Reach", [("s", state_sort)])
    Init = RelationDecl("Init", [("s", state_sort)])
    Trans = RelationDecl("Trans", [("s", state_sort), ("n", state_sort)])
    s, n = Var("s", state_sort), Var("n", state_sort)
    #   Reach(u) = Init(u) \/ exists x. Reach(x) /\ Trans(x, u)
    system = EquationSystem(
        [Equation(Reach, Or(Init(s), Exists(n, And(Reach(n), Trans(n, s)))))],
        inputs=[Init, Trans],
    )
    backend = SymbolicBackend(system)
    mgr = backend.manager
    cube = backend.context.encode_cube

    init = cube(s, {"want0": False, "want1": False, "crit0": False, "crit1": False})

    def step(before: dict, after: dict) -> int:
        return mgr.and_(cube(s, before), cube(n, after))

    # A (buggy) protocol: each process may enter the critical section whenever
    # it wants to, with no check of the other process.
    transitions = []
    for want0 in (False, True):
        for want1 in (False, True):
            for crit0 in (False, True):
                for crit1 in (False, True):
                    here = {"want0": want0, "want1": want1, "crit0": crit0, "crit1": crit1}
                    transitions.append(step(here, {**here, "want0": True}))
                    transitions.append(step(here, {**here, "want1": True}))
                    if want0:
                        transitions.append(step(here, {**here, "crit0": True, "want0": False}))
                    if want1:
                        transitions.append(step(here, {**here, "crit1": True, "want1": False}))
                    if crit0:
                        transitions.append(step(here, {**here, "crit0": False}))
                    if crit1:
                        transitions.append(step(here, {**here, "crit1": False}))
    trans = mgr.disjoin(transitions)

    result = evaluate_nested(system, "Reach", backend, {"Init": init, "Trans": trans})
    reached = result.value
    violation = mgr.and_(reached, mgr.and_(mgr.var("s.crit0"), mgr.var("s.crit1")))
    print(f"   reachable states: {backend.count(reached, Reach)}")
    print(f"   mutual exclusion violated: {violation != mgr.FALSE}")
    print()


PROGRAM = """
decl logging;

main() begin
  decl request;
  request := *;
  if (request) then
    call handle(request);
  fi
end

handle(r) begin
  call audit(r);
  if (logging) then
    hotspot: skip;
  fi
end

audit(v) begin
  logging := v;
end
"""


def active_procedures_analysis() -> None:
    """Which procedures can be on the call stack when `hotspot` executes?"""
    print("== 2. A custom analysis: procedures active at the target statement ==")
    program = parse_program(PROGRAM)
    cfg = build_cfg(program)
    encoder = SequentialEncoder(cfg)
    spec = build_ef(encoder)  # re-use the entry-forward summaries as-is

    state = encoder.space.state_sort
    module_sort = encoder.space.module_sort
    decls = encoder.decls
    SummaryEF = spec.system.equations["SummaryEF"].decl
    IntoCall = decls["IntoCall"]
    Target = decls["Target"]

    # ActiveAt(mod): procedure `mod` has a frame on the stack in some run that
    # is currently at the target statement.  One new equation:
    #   ActiveAt(m) holds if the target is summarised inside m itself, or if m
    #   has a summarised call site into a procedure that is (transitively)
    #   active at the target.
    ActiveAt = RelationDecl("ActiveAt", [("mod", module_sort)])
    mod = Var("mod", module_sort)
    u, v, x, y = (Var(name, state) for name in ("u", "v", "x", "y"))
    active_body = Or(
        Exists([u, v], And(SummaryEF(u, v), Target(v.mod, v.pc), Eq(v.mod, mod))),
        Exists(
            [u, x, y],
            And(SummaryEF(u, x), Eq(x.mod, mod), IntoCall(x, y), ActiveAt(y.mod)),
        ),
    )
    system = EquationSystem(
        list(spec.system.equations.values()) + [Equation(ActiveAt, active_body)],
        inputs=list(spec.system.inputs.values()),
    )

    backend = SymbolicBackend(system)
    target_location = [cfg.label_location("handle", "hotspot")]
    templates = encoder.encode(backend, target_location)
    result = evaluate_nested(system, "ActiveAt", backend, templates.interps())

    index_to_name = {index: name for name, index in cfg.module_index.items()}
    active = sorted(
        index_to_name[values[0]] for values in backend.models(result.value, ActiveAt)
    )
    print(f"   procedures that can be active when 'hotspot' runs: {active}")
    print("   (audit is not active: it has already returned by then)")


if __name__ == "__main__":
    mutual_exclusion_reachability()
    active_procedures_analysis()
