#!/usr/bin/env python3
"""Compare all engines on a SLAM-style device-driver benchmark.

This reproduces (at laptop scale) the workflow behind Figure 2 of the paper:
generate a driver-shaped Boolean program, then run the three GETAFIX
fixed-point algorithms alongside the explicit BEBOP-style and MOPED-style
baselines, printing one row per engine with verdicts, sizes and timings.

Run with::

    python examples/device_driver_analysis.py [--handlers N] [--negative]
"""

import argparse

from repro.baselines import run_bebop, run_moped
from repro.benchgen import DriverSpec, make_driver
from repro.algorithms import run_sequential
from repro.frontends import resolve_target


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--handlers", type=int, default=3, help="number of IRP handlers")
    parser.add_argument(
        "--negative",
        action="store_true",
        help="generate the correct driver (lock discipline respected everywhere)",
    )
    args = parser.parse_args()

    spec = DriverSpec(
        name="example-driver",
        handlers=args.handlers,
        flags=min(4, args.handlers),
        helpers=max(1, args.handlers // 2),
        positive=not args.negative,
    )
    program = make_driver(spec)
    locations = resolve_target(program, spec.target)
    print(f"driver with {len(program.procedures)} procedures, "
          f"{len(program.globals)} globals — target: {spec.target}")
    print(f"{'engine':24s} {'verdict':8s} {'size':>10s} {'time (s)':>10s}")

    for algorithm in ("summary", "ef", "ef-opt"):
        result = run_sequential(program, locations, algorithm=algorithm)
        print(f"{result.algorithm:24s} {result.verdict():8s} {result.summary_nodes:10d} "
              f"{result.total_seconds:10.3f}")
    for name, runner in (("bebop-explicit", run_bebop), ("moped-post*", run_moped)):
        result = runner(program, locations)
        print(f"{result.algorithm:24s} {result.verdict():8s} {result.summary_nodes:10d} "
              f"{result.total_seconds:10.3f}")


if __name__ == "__main__":
    main()
