#!/usr/bin/env python3
"""Quickstart: check reachability in a recursive Boolean program with GETAFIX.

The program below is a small Boolean abstraction of a lock-discipline check: a
client acquires and releases a lock through helper procedures, and the
assertion inside ``acquire`` fails if the lock is ever acquired twice.  We ask
GETAFIX (the optimised entry-forward algorithm of the paper, written as a
fixed-point formula and evaluated symbolically with BDDs) whether the
assertion can fail, and print the statistics the paper reports in Figure 2.

Run with::

    python examples/quickstart.py
"""

from repro.frontends import check_reachability

PROGRAM = """
decl lock, request_pending;

main() begin
  decl busy;
  busy := *;
  while (busy) do
    call submit_request();
    if (request_pending) then
      call complete_request();
    fi
    busy := *;
  od
end

submit_request() begin
  call acquire();
  request_pending := T;
  // BUG: on a nondeterministic "fast path" the request is completed without
  // releasing the lock first.
  if (*) then
    call complete_request();
  else
    call release();
  fi
end

complete_request() begin
  call acquire();
  request_pending := F;
  call release();
end

acquire() begin
  assert(!lock);
  lock := T;
end

release() begin
  lock := F;
end
"""


def main() -> None:
    for algorithm in ("summary", "ef", "ef-opt"):
        result = check_reachability(PROGRAM, target="error", algorithm=algorithm)
        print(
            f"{result.algorithm:20s} reachable={result.verdict():3s} "
            f"iterations={result.iterations:3d} "
            f"summary-BDD-nodes={result.summary_nodes:5d} "
            f"time={result.total_seconds:6.3f}s"
        )
    answer = check_reachability(PROGRAM, target="error")
    print()
    if answer.reachable:
        print("The lock discipline can be violated (the assert in `acquire` is reachable).")
    else:
        print("The lock discipline holds for every execution.")


if __name__ == "__main__":
    main()
