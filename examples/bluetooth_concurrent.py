#!/usr/bin/env python3
"""Bounded context-switching analysis of the Bluetooth driver model (Figure 3).

The Windows NT Bluetooth driver model has adder threads (perform I/O) and
stopper threads (stop the driver); the bug is an adder performing I/O after
the driver has stopped.  This example checks one thread configuration for a
range of context-switch bounds using the paper's fixed-point algorithm
(Section 5) and cross-checks each verdict with the explicit-state engine.

Run with::

    python examples/bluetooth_concurrent.py [--adders N] [--stoppers N] [--max-switches K]
"""

import argparse

from repro.algorithms import run_concurrent
from repro.baselines import run_concurrent_explicit
from repro.benchgen import make_bluetooth
from repro.encode.concurrent import ConcurrentEncoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--adders", type=int, default=1)
    parser.add_argument("--stoppers", type=int, default=2)
    parser.add_argument("--max-switches", type=int, default=3)
    parser.add_argument(
        "--explicit-only",
        action="store_true",
        help="skip the symbolic engine (useful for large bounds)",
    )
    args = parser.parse_args()

    program = make_bluetooth(args.adders, args.stoppers)
    encoder = ConcurrentEncoder(program)
    locations = encoder.error_locations()
    print(f"Bluetooth model: {args.adders} adder(s), {args.stoppers} stopper(s)")
    print(f"{'switches':>8s} {'explicit':>10s} {'symbolic':>10s} {'BDD nodes':>10s} {'time (s)':>10s}")
    for bound in range(0, args.max_switches + 1):
        explicit = run_concurrent_explicit(program, locations, context_switches=bound)
        if args.explicit_only:
            print(f"{bound:8d} {explicit.verdict():>10s} {'—':>10s} {'—':>10s} "
                  f"{explicit.total_seconds:10.3f}")
            continue
        symbolic = run_concurrent(program, locations, context_switches=bound)
        agree = "" if symbolic.reachable == explicit.reachable else "  <-- disagreement!"
        print(f"{bound:8d} {explicit.verdict():>10s} {symbolic.verdict():>10s} "
              f"{symbolic.summary_nodes:10d} {symbolic.total_seconds:10.3f}{agree}")


if __name__ == "__main__":
    main()
